"""Framework emulation presets for the paper's comparison baselines.

Table 4 / Figure 4 compare GraphIt (with the priority extension) against
Julienne, Galois, GAPBS, unordered GraphIt, and Ligra.  Each framework is
characterized by its bucketing strategy; this module reproduces each one as
a configuration of this library's own runtime so the comparison isolates
exactly the strategy differences the paper attributes the results to:

========================  ====================================================
``graphit``               The paper's system: best schedule per algorithm —
                          eager with bucket fusion for the Δ-stepping family,
                          lazy with constant-sum histogram for k-core, lazy
                          for SetCover.
``gapbs``                 Eager bucket update without fusion (hand-optimized
                          Δ-stepping); no k-core or SetCover.
``julienne``              Lazy bucket update for everything, plus the
                          overheads the paper calls out: a per-round
                          out-degree reduction for the direction optimization
                          and a lambda call per priority computation (its
                          pre-redesign bucketing interface).
``galois``                Approximate priority ordering (ordered list); no
                          wBFS, k-core, or SetCover (needs strict ordering).
``graphit_unordered``     Frontier-based unordered algorithms (Bellman-Ford,
                          whole-graph threshold peeling).
``ligra``                 Same unordered algorithms with generic frontier
                          bookkeeping overhead.
========================  ====================================================

``run_framework`` returns ``None`` when a framework does not support an
algorithm (the gray cells of Figure 4).
"""

from __future__ import annotations

import numpy as np

from ..buckets.lazy import LazyBucketQueue
from ..core.executors import make_min_relaxer, run_lazy
from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..graph.properties import INT_MAX
from ..midend.schedule import Schedule
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool
from .astar import astar, euclidean_heuristic
from .kcore import kcore
from .ppsp import ppsp
from .setcover import setcover
from .sssp import sssp
from .unordered import bellman_ford, unordered_kcore
from .wbfs import wbfs

__all__ = ["FRAMEWORKS", "ALGORITHMS", "run_framework", "supports"]

FRAMEWORKS = (
    "graphit",
    "gapbs",
    "julienne",
    "galois",
    "graphit_unordered",
    "ligra",
)

ALGORITHMS = ("sssp", "ppsp", "wbfs", "astar", "kcore", "setcover")

# Modelled Julienne overheads (Section 6.2): the per-priority lambda call of
# its original bucketing interface, charged per buffered update.
_JULIENNE_LAMBDA_COST = 4

_SUPPORT: dict[str, frozenset[str]] = {
    "graphit": frozenset(ALGORITHMS),
    "gapbs": frozenset({"sssp", "ppsp", "wbfs", "astar"}),
    "julienne": frozenset(ALGORITHMS),
    "galois": frozenset({"sssp", "ppsp", "astar"}),
    "graphit_unordered": frozenset({"sssp", "ppsp", "wbfs", "astar", "kcore"}),
    "ligra": frozenset({"sssp", "ppsp", "wbfs", "astar", "kcore"}),
}


def supports(framework: str, algorithm: str) -> bool:
    """Whether ``framework`` provides ``algorithm`` (the non-gray cells)."""
    _check_names(framework, algorithm)
    return algorithm in _SUPPORT[framework]


def _check_names(framework: str, algorithm: str) -> None:
    if framework not in FRAMEWORKS:
        raise GraphError(f"unknown framework {framework!r}; expected {FRAMEWORKS}")
    if algorithm not in ALGORITHMS:
        raise GraphError(f"unknown algorithm {algorithm!r}; expected {ALGORITHMS}")


def run_framework(
    framework: str,
    algorithm: str,
    graph: CSRGraph,
    source: int = 0,
    target: int | None = None,
    delta: int = 8,
    num_threads: int = 8,
    fusion_threshold: int = 1000,
    execution: str = "serial",
):
    """Run ``algorithm`` the way ``framework`` would; ``None`` if unsupported.

    ``graph`` must be weighted/directed for the Δ-stepping family and
    symmetric for k-core / SetCover, matching Table 3's conventions.
    Returns the algorithm's result object (with ``.stats``).
    """
    _check_names(framework, algorithm)
    if not supports(framework, algorithm):
        return None
    if algorithm in ("ppsp", "astar") and target is None:
        raise GraphError(f"{algorithm} requires a target vertex")

    if framework == "graphit":
        return _run_graphit(
            algorithm,
            graph,
            source,
            target,
            delta,
            num_threads,
            fusion_threshold,
            execution,
        )
    if framework == "gapbs":
        schedule = Schedule(
            priority_update="eager_no_fusion",
            delta=delta,
            num_threads=num_threads,
            execution=execution,
        )
        return _run_delta_family(algorithm, graph, source, target, schedule)
    if framework == "julienne":
        return _run_julienne(
            algorithm, graph, source, target, delta, num_threads, execution
        )
    if framework == "galois":
        schedule = Schedule(
            priority_update="eager_no_fusion",
            delta=delta,
            num_threads=num_threads,
            execution=execution,
        )
        if algorithm == "sssp":
            return sssp(graph, source, schedule, relaxed_ordering=True)
        if algorithm == "ppsp":
            return ppsp(graph, source, target, schedule, relaxed_ordering=True)
        return astar(graph, source, target, schedule, relaxed_ordering=True)
    # Unordered frameworks.
    overhead = 2 if framework == "ligra" else 0
    if algorithm == "kcore":
        return unordered_kcore(graph, num_threads)
    return bellman_ford(
        graph, source, num_threads, target=target, frontier_overhead=overhead
    )


def _run_graphit(
    algorithm: str,
    graph: CSRGraph,
    source: int,
    target: int | None,
    delta: int,
    num_threads: int,
    fusion_threshold: int,
    execution: str = "serial",
):
    fused = Schedule(
        priority_update="eager_with_fusion",
        delta=delta,
        bucket_fusion_threshold=fusion_threshold,
        num_threads=num_threads,
        execution=execution,
    )
    if algorithm == "kcore":
        return kcore(
            graph,
            Schedule(
                priority_update="lazy_constant_sum",
                num_threads=num_threads,
                execution=execution,
            ),
        )
    if algorithm == "setcover":
        return setcover(
            graph,
            Schedule(
                priority_update="lazy", num_threads=num_threads, execution=execution
            ),
        )
    return _run_delta_family(algorithm, graph, source, target, fused)


def _run_delta_family(
    algorithm: str,
    graph: CSRGraph,
    source: int,
    target: int | None,
    schedule: Schedule,
):
    if algorithm == "sssp":
        return sssp(graph, source, schedule)
    if algorithm == "wbfs":
        return wbfs(graph, source, schedule.with_(delta=1))
    if algorithm == "ppsp":
        return ppsp(graph, source, target, schedule)
    if algorithm == "astar":
        return astar(graph, source, target, schedule)
    raise GraphError(f"{algorithm} is not in the Δ-stepping family")


def _run_julienne(
    algorithm: str,
    graph: CSRGraph,
    source: int,
    target: int | None,
    delta: int,
    num_threads: int,
    execution: str = "serial",
):
    """Julienne: lazy bucketing with its documented per-round overheads."""
    if algorithm == "kcore":
        result = kcore(
            graph,
            Schedule(
                priority_update="lazy_constant_sum",
                num_threads=num_threads,
                execution=execution,
            ),
        )
        _charge_lambda_overhead(result.stats)
        return result
    if algorithm == "setcover":
        result = setcover(
            graph,
            Schedule(
                priority_update="lazy", num_threads=num_threads, execution=execution
            ),
        )
        _charge_lambda_overhead(result.stats)
        return result
    result = _run_julienne_sssp_family(
        algorithm, graph, source, target, delta, num_threads, execution
    )
    _charge_lambda_overhead(result.stats)
    return result


def _run_julienne_sssp_family(
    algorithm: str,
    graph: CSRGraph,
    source: int,
    target: int | None,
    delta: int,
    num_threads: int,
    execution: str = "serial",
):
    """Lazy Δ-stepping with Julienne's per-round out-degree reduction.

    Julienne computes the frontier's out-degree sum every round to drive the
    direction optimization (Section 6.2); the reduction is one unit of work
    per frontier vertex, charged through the executor's round-overhead hook.
    """
    from .common import ShortestPathResult

    wbfs_delta = 1 if algorithm == "wbfs" else delta
    schedule = Schedule(
        priority_update="lazy",
        delta=wbfs_delta,
        num_threads=num_threads,
        execution=execution,
    )
    n = graph.num_vertices
    stats = RuntimeStats(num_threads=num_threads)
    stats.execution = schedule.execution
    pool = VirtualThreadPool(
        num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    distances = np.full(n, INT_MAX, dtype=np.int64)
    distances[source] = 0
    heuristic = None
    priorities = distances
    if algorithm == "astar":
        heuristic = euclidean_heuristic(graph, target)
        priorities = np.full(n, INT_MAX, dtype=np.int64)
        priorities[source] = heuristic[source]
    queue = LazyBucketQueue(
        priorities,
        delta=schedule.delta,
        num_open_buckets=schedule.num_buckets,
        stats=stats,
        initial_vertices=[source],
    )
    should_stop = None
    if algorithm in ("ppsp", "astar"):

        def should_stop() -> bool:
            best = distances[target]
            if best == INT_MAX:
                return False
            bound = best if heuristic is None else best + heuristic[target]
            return queue.get_current_priority() >= bound

    relax = make_min_relaxer(graph, distances, queue, stats, heuristic)

    def degree_reduction(frontier: np.ndarray) -> int:
        # One unit per frontier vertex: the out-degree sum reduce.
        return int(frontier.size)

    run_lazy(
        graph, queue, relax, pool, stats, should_stop, round_overhead=degree_reduction
    )
    return ShortestPathResult(
        distances=distances,
        stats=stats,
        schedule=schedule,
        source=source,
        target=target,
    )


def _charge_lambda_overhead(stats: RuntimeStats) -> None:
    """Model Julienne's lambda-per-priority-computation interface cost.

    The paper's redesigned interface "eliminates extra function calls"; the
    original interface pays one call per bucketed update.  Charged onto the
    per-round critical path proportionally to bucket insertions.
    """
    if stats.rounds == 0 or stats.bucket_inserts == 0:
        return
    extra_per_round = (
        _JULIENNE_LAMBDA_COST * stats.bucket_inserts // max(1, stats.rounds)
    ) // max(1, stats.num_threads)
    stats.max_work_per_round = [
        work + extra_per_round for work in stats.max_work_per_round
    ]
    stats.total_work_per_round = [
        work + extra_per_round * stats.num_threads
        for work in stats.total_work_per_round
    ]
