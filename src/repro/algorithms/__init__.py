"""The six ordered algorithms, unordered baselines, and framework presets."""

from .astar import astar, euclidean_heuristic
from .common import UNREACHABLE, ShortestPathResult, run_delta_stepping
from .frameworks import ALGORITHMS, FRAMEWORKS, run_framework, supports
from .kcore import DEFAULT_KCORE_SCHEDULE, KCoreResult, kcore, kcore_reference
from .ppsp import ppsp
from .setcover import (
    DEFAULT_SETCOVER_SCHEDULE,
    SetCoverResult,
    greedy_setcover_reference,
    setcover,
)
from .sssp import DEFAULT_SSSP_SCHEDULE, dijkstra_reference, sssp
from .unordered import bellman_ford, unordered_kcore
from .widest_path import DEFAULT_WIDEST_SCHEDULE, widest_path, widest_path_reference
from .wbfs import DEFAULT_WBFS_SCHEDULE, wbfs

__all__ = [
    "sssp",
    "wbfs",
    "ppsp",
    "astar",
    "kcore",
    "setcover",
    "bellman_ford",
    "unordered_kcore",
    "widest_path",
    "widest_path_reference",
    "DEFAULT_WIDEST_SCHEDULE",
    "dijkstra_reference",
    "kcore_reference",
    "greedy_setcover_reference",
    "euclidean_heuristic",
    "run_delta_stepping",
    "run_framework",
    "supports",
    "ShortestPathResult",
    "KCoreResult",
    "SetCoverResult",
    "UNREACHABLE",
    "FRAMEWORKS",
    "ALGORITHMS",
    "DEFAULT_SSSP_SCHEDULE",
    "DEFAULT_WBFS_SCHEDULE",
    "DEFAULT_KCORE_SCHEDULE",
    "DEFAULT_SETCOVER_SCHEDULE",
]
