"""Point-to-point shortest path (PPSP).

Section 6.1: Δ-stepping with priority coarsening, terminating early when the
algorithm enters an iteration whose bucket priority ``iΔ`` is at least the
best distance already found for the destination — at that point no remaining
vertex can improve the destination's distance (weights are non-negative).
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from .common import ShortestPathResult, run_delta_stepping
from .sssp import DEFAULT_SSSP_SCHEDULE

__all__ = ["ppsp"]


def ppsp(
    graph: CSRGraph,
    source: int,
    target: int,
    schedule: Schedule | None = None,
    relaxed_ordering: bool = False,
) -> ShortestPathResult:
    """Shortest path distance from ``source`` to ``target`` with early exit.

    The result's ``target_distance`` is exact; distances of vertices whose
    buckets were never reached are left at the unreachable sentinel.
    """
    if schedule is None:
        schedule = DEFAULT_SSSP_SCHEDULE
    return run_delta_stepping(
        graph,
        source,
        schedule,
        target=target,
        relaxed_ordering=relaxed_ordering,
    )
