"""Unordered baselines (Bellman-Ford and unordered k-core).

These are the algorithms the paper's Figure 1 and the "GraphIt (unordered)" /
"Ligra" rows of Table 4 run: frontier-based processing with *no* priority
ordering.  Every active vertex is processed every round regardless of its
priority, so work explodes on graphs where ordering prunes redundant
relaxations (weighted graphs, and most dramatically road networks).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import INT_MAX
from ..runtime.frontier import gather_out_edges
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool
from .common import ShortestPathResult, check_source
from .kcore import KCoreResult

__all__ = ["bellman_ford", "unordered_kcore"]


def bellman_ford(
    graph: CSRGraph,
    source: int,
    num_threads: int = 8,
    target: int | None = None,
    frontier_overhead: int = 0,
) -> ShortestPathResult:
    """Frontier-based Bellman-Ford SSSP (the unordered baseline).

    Each round relaxes all out-edges of the vertices whose distance changed
    in the previous round, in arbitrary order.  ``frontier_overhead`` adds
    that many work units per frontier vertex per round (used by the Ligra
    emulation to model its generic frontier bookkeeping).

    ``target`` is accepted for interface parity with PPSP but cannot enable
    early exit: without ordering there is no round at which the target's
    distance is known to be final (the reason unordered PPSP costs the same
    as full SSSP in Table 4).
    """
    check_source(graph, source)
    n = graph.num_vertices
    stats = RuntimeStats(num_threads=num_threads)
    pool = VirtualThreadPool(num_threads)
    distances = np.full(n, INT_MAX, dtype=np.int64)
    distances[source] = 0
    degrees = graph.out_degrees()
    frontier = np.array([source], dtype=np.int64)

    while frontier.size:
        stats.begin_round()
        next_parts: list[np.ndarray] = []
        chunks = pool.partition(frontier, degrees=degrees[frontier])
        for thread_id, chunk in enumerate(chunks):
            if chunk.size == 0:
                continue
            sources, dests, weights = gather_out_edges(graph, chunk)
            stats.relaxations += int(sources.size)
            stats.atomic_ops += int(dests.size)
            candidates = distances[sources] + weights
            old = distances[dests].copy()
            np.minimum.at(distances, dests, candidates)
            changed = np.unique(dests[distances[dests] < old])
            next_parts.append(changed)
            work = int(sources.size) + int(changed.size)
            work += frontier_overhead * int(chunk.size)
            stats.add_thread_work(thread_id, work)
        stats.end_round(syncs=1)
        frontier = (
            np.unique(np.concatenate(next_parts))
            if next_parts
            else np.empty(0, dtype=np.int64)
        )

    return ShortestPathResult(
        distances=distances,
        stats=stats,
        schedule=None,
        source=source,
        target=target,
    )


def unordered_kcore(graph: CSRGraph, num_threads: int = 8) -> KCoreResult:
    """Unordered k-core: repeated whole-graph threshold peeling.

    The classic unordered formulation (the one the paper's Figure 1 compares
    against): for each ``k`` in increasing order, repeatedly remove *all*
    remaining vertices with induced degree <= ``k``, **recomputing the
    induced degrees with a full edge scan every round** — the unordered
    model has no per-vertex update ordering to maintain degree counters
    against, so each round pays an edges-wide apply.  Bucketed peeling
    eliminates exactly this redundancy.
    """
    n = graph.num_vertices
    stats = RuntimeStats(num_threads=num_threads)
    sources, dests, _ = graph.edge_list()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    k = 0
    remaining = n
    while remaining > 0:
        stats.begin_round()
        # Full-edge-scan recomputation of induced degrees (the unordered
        # version's defining inefficiency).
        live_edges = alive[sources] & alive[dests]
        stats.relaxations += int(sources.size)
        degrees = np.bincount(sources[live_edges], minlength=n).astype(np.int64)
        scan_work = int(sources.size) + remaining
        per_thread = scan_work // num_threads + 1
        for thread_id in range(num_threads):
            stats.add_thread_work(thread_id, per_thread)
        peelable = alive & (degrees <= k)
        count = int(np.count_nonzero(peelable))
        if count:
            coreness[peelable] = k
            alive[peelable] = False
            remaining -= count
        else:
            k += 1
        stats.end_round(syncs=1)

    return KCoreResult(coreness=coreness, stats=stats, schedule=None)
