"""Weighted breadth-first search (wBFS).

Section 6.1: wBFS is Δ-stepping specialized to graphs with small positive
integer weights (the paper uses weights in ``[1, log n)``), with Δ fixed to 1
so every bucket holds exactly one distance value.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from .common import ShortestPathResult, run_delta_stepping

__all__ = ["wbfs", "DEFAULT_WBFS_SCHEDULE"]

DEFAULT_WBFS_SCHEDULE = Schedule(
    priority_update="eager_with_fusion",
    delta=1,
    bucket_fusion_threshold=1000,
)


def wbfs(
    graph: CSRGraph,
    source: int,
    schedule: Schedule | None = None,
) -> ShortestPathResult:
    """Δ-stepping with Δ = 1 (one bucket per distance value).

    The schedule may configure any bucketing strategy but must keep
    ``delta == 1``; wBFS is by definition uncoarsened.
    """
    if schedule is None:
        schedule = DEFAULT_WBFS_SCHEDULE
    if schedule.delta != 1:
        raise SchedulingError("wBFS fixes delta to 1 (it is its defining property)")
    return run_delta_stepping(graph, source, schedule)
