"""Single-source shortest paths with Δ-stepping (the paper's running example).

``sssp`` is the public entry point; ``dijkstra_reference`` provides the
sequential ground truth the test suite verifies every strategy against.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import INT_MAX
from ..midend.schedule import Schedule
from .common import ShortestPathResult, check_source, run_delta_stepping

__all__ = ["sssp", "dijkstra_reference", "DEFAULT_SSSP_SCHEDULE"]

# The hand-tuned schedule family from the paper: eager with bucket fusion,
# push traversal.  Δ is graph-dependent (Section 6.2, "Delta Selection");
# callers tune it per graph or via the autotuner.
DEFAULT_SSSP_SCHEDULE = Schedule(
    priority_update="eager_with_fusion",
    delta=8,
    bucket_fusion_threshold=1000,
)


def sssp(
    graph: CSRGraph,
    source: int,
    schedule: Schedule | None = None,
    relaxed_ordering: bool = False,
) -> ShortestPathResult:
    """Compute shortest path distances from ``source`` with Δ-stepping.

    Edge weights must be non-negative.  The bucketing strategy, coarsening
    factor Δ, traversal direction, and thread count all come from
    ``schedule`` (Table 2); the result carries the distances and the
    execution profile (rounds, synchronizations, simulated time).

    Setting ``relaxed_ordering`` runs the Galois-style approximate-priority
    emulation instead of strict bucketing.
    """
    if schedule is None:
        schedule = DEFAULT_SSSP_SCHEDULE
    return run_delta_stepping(
        graph, source, schedule, relaxed_ordering=relaxed_ordering
    )


def dijkstra_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Sequential Dijkstra; the correctness oracle for all SSSP variants."""
    check_source(graph, source)
    distances = np.full(graph.num_vertices, INT_MAX, dtype=np.int64)
    distances[source] = 0
    heap: list[tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d != distances[v]:
            continue
        for u, w in graph.out_edges(v):
            candidate = d + w
            if candidate < distances[u]:
                distances[u] = candidate
                heapq.heappush(heap, (candidate, u))
    return distances
