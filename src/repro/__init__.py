"""repro — a from-scratch reproduction of "Optimizing Ordered Graph
Algorithms with GraphIt" (CGO 2020).

The package provides (see DESIGN.md for the full inventory):

- :mod:`repro.graph` — CSR graphs, generators, I/O, vertex sets;
- :mod:`repro.buckets` — lazy (Julienne-style), eager (GAPBS-style with
  bucket fusion), and relaxed (Galois-style) priority-bucket structures;
- :mod:`repro.algorithms` — the six ordered algorithms of the paper plus
  unordered baselines and framework-emulation presets;
- :mod:`repro.lang` / :mod:`repro.midend` / :mod:`repro.backend` — the DSL
  compiler: parser, type checker, program analyses and transforms, and the
  Python and C++ code generators;
- :mod:`repro.autotune` — the schedule autotuner;
- :mod:`repro.eval` — datasets and the measurement harness used by the
  benchmark drivers.

Quick start::

    from repro import Schedule, sssp
    from repro.graph import road_grid

    graph = road_grid(60, 60, seed=1)
    result = sssp(graph, 0, Schedule(priority_update="eager_with_fusion",
                                     delta=2048))
    result.distances, result.stats.rounds
"""

from .algorithms import (
    astar,
    bellman_ford,
    dijkstra_reference,
    kcore,
    kcore_reference,
    ppsp,
    run_framework,
    setcover,
    sssp,
    unordered_kcore,
    wbfs,
    widest_path,
    widest_path_reference,
)
from .autotune import autotune
from .backend import CompiledProgram, RunResult, compile_program
from .errors import (
    AutotuneError,
    CompileError,
    GraphError,
    GraphItError,
    ParseError,
    PriorityQueueError,
    SchedulingError,
    TypeCheckError,
)
from .graph import CSRGraph, GraphBuilder, VertexSet, VertexVector
from .midend import Schedule, SchedulingProgram
from .runtime.sanitizer import SanitizerError

__version__ = "1.0.0"

__all__ = [
    "sssp",
    "wbfs",
    "ppsp",
    "astar",
    "kcore",
    "setcover",
    "bellman_ford",
    "unordered_kcore",
    "widest_path",
    "widest_path_reference",
    "dijkstra_reference",
    "kcore_reference",
    "run_framework",
    "autotune",
    "compile_program",
    "CompiledProgram",
    "RunResult",
    "Schedule",
    "SchedulingProgram",
    "CSRGraph",
    "GraphBuilder",
    "VertexSet",
    "VertexVector",
    "GraphItError",
    "GraphError",
    "ParseError",
    "TypeCheckError",
    "SchedulingError",
    "CompileError",
    "PriorityQueueError",
    "SanitizerError",
    "AutotuneError",
    "__version__",
]
