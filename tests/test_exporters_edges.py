"""Edge cases of :mod:`repro.obs.exporters`: empty traces, unfinished and
zero-duration nested spans, multi-thread interleaving.

The exporters are the substrate both ``repro profile`` and the new
``trace-diff`` attribution stand on, so their behaviour at the margins —
no events at all, spans still open when the tracer deactivates, identical
timestamps across threads — must be pinned, not assumed.
"""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.obs import (
    chrome_trace,
    format_profile,
    load_chrome_trace,
    self_profile,
    write_chrome_trace,
)


def span(name, cat, ts, dur, tid=1):
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": float(ts),
        "dur": float(dur),
        "pid": 1,
        "tid": tid,
        "args": {},
    }


class TestEmptyTrace:
    def test_chrome_trace_of_no_events_is_valid(self):
        payload = chrome_trace([])
        assert payload["traceEvents"] == []
        obs.assert_valid_chrome_trace(payload)

    def test_empty_trace_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(str(path), [])
        assert load_chrome_trace(str(path))["traceEvents"] == []

    def test_self_profile_of_nothing(self):
        assert self_profile([]) == []
        # The formatter must not blow up on an empty table.
        assert isinstance(format_profile([]), str)

    def test_tracer_with_no_spans_exports_cleanly(self):
        with obs.tracing() as tracer:
            pass
        payload = chrome_trace(tracer)
        # Only metadata events (thread names), no spans.
        assert all(e["ph"] != "X" for e in payload["traceEvents"])
        assert self_profile(tracer.events) == []


class TestUnfinishedAndNestedSpans:
    def test_unfinished_span_emits_no_event(self):
        """A span still open at deactivate contributes nothing — the
        exporter sees only completed ``ph: X`` events."""
        with obs.tracing() as tracer:
            cm = obs.span("compile", "compiler")
            cm.__enter__()  # never exited
        names = [e["name"] for e in tracer.events if e.get("ph") == "X"]
        assert "compile" not in names
        assert self_profile(tracer.events) == []

    def test_zero_duration_child_does_not_corrupt_self_time(self):
        events = [
            span("outer", "runtime", 0, 100),
            span("inner", "runtime", 50, 0),
        ]
        rows = {r.name: r for r in self_profile(events)}
        assert rows["outer"].self_us == pytest.approx(100)
        assert rows["inner"].self_us == pytest.approx(0)
        assert rows["inner"].count == 1

    def test_deep_nesting_attributes_each_level_once(self):
        events = [
            span("a", "runtime", 0, 100),
            span("b", "runtime", 10, 80),
            span("c", "runtime", 20, 60),
        ]
        rows = {r.name: r for r in self_profile(events)}
        assert rows["a"].self_us == pytest.approx(20)
        assert rows["b"].self_us == pytest.approx(20)
        assert rows["c"].self_us == pytest.approx(60)
        total_self = sum(r.self_us for r in rows.values())
        assert total_self == pytest.approx(100)  # no double counting

    def test_siblings_at_identical_timestamps(self):
        """Parent and first child starting at the same ts: the longest
        span is treated as enclosing (the tie-break the sweep relies on)."""
        events = [
            span("child", "runtime", 0, 40),
            span("parent", "runtime", 0, 100),
        ]
        rows = {r.name: r for r in self_profile(events)}
        assert rows["parent"].self_us == pytest.approx(60)
        assert rows["child"].self_us == pytest.approx(40)


class TestMultiThreadInterleaving:
    def test_overlapping_spans_on_different_threads_independent(self):
        """Nesting is per-thread: overlapping intervals on different tids
        must NOT subtract from each other's self time."""
        events = [
            span("worker.produce", "parallel", 0, 100, tid=1),
            span("worker.produce", "parallel", 50, 100, tid=2),
            span("apply.push", "runtime", 60, 20, tid=2),
        ]
        rows = {r.name: r for r in self_profile(events)}
        # tid=1's span is untouched by tid=2's overlap; only tid=2's own
        # child subtracts.
        assert rows["worker.produce"].total_us == pytest.approx(200)
        assert rows["worker.produce"].self_us == pytest.approx(180)
        assert rows["worker.produce"].count == 2

    def test_real_parallel_trace_has_consistent_thread_nesting(self):
        """Spans recorded by real worker threads nest strictly per thread
        (the invariant the interval sweep needs)."""
        import numpy as np

        from repro import Schedule, compile_program
        from repro.graph.generators import rmat
        from repro.lang.programs import ALL_PROGRAMS

        graph = rmat(9, 8, seed=5, weights=(1, 4))
        program = compile_program(
            ALL_PROGRAMS["sssp"],
            Schedule(
                priority_update="eager_with_fusion",
                delta=3,
                num_threads=4,
                execution="parallel",
            ),
        )
        source = int(np.argmax(graph.out_degrees()))
        with obs.tracing() as tracer:
            program.run(["sssp", "-", str(source)], graph=graph)
        spans = [e for e in tracer.events if e.get("ph") == "X"]
        tids = {e["tid"] for e in spans}
        assert len(tids) > 1  # worker threads actually traced
        rows = self_profile(spans)
        for row in rows:
            assert row.self_us >= -1e-6, (row.name, row.self_us)
        by_name = {r.name for r in rows}
        assert "worker.produce" in by_name

    def test_interleaved_writes_from_threads_export_validly(self):
        """Concurrent span recording through the public hooks produces a
        schema-valid trace (no torn events)."""
        with obs.tracing() as tracer:
            def work():
                for _ in range(50):
                    with obs.span("commit", "parallel"):
                        pass

            pool = [threading.Thread(target=work) for _ in range(4)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        payload = chrome_trace(tracer)
        commits = [
            e for e in payload["traceEvents"] if e.get("name") == "commit"
        ]
        assert len(commits) == 200
        rows = {r.name: r for r in self_profile(tracer.events)}
        assert rows["commit"].count == 200
