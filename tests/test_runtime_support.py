"""Tests for the generated-code runtime (repro.backend.runtime_support)."""

import numpy as np
import pytest

from repro.backend.runtime_support import Context
from repro.buckets import EagerBucketQueue, LazyBucketQueue
from repro.errors import CompileError, GraphItError, SchedulingError
from repro.graph import from_edges, save_edge_list, save_npz
from repro.graph.properties import INT_MAX
from repro.midend import Schedule


@pytest.fixture
def diamond():
    return from_edges(
        5, [(0, 1, 2), (0, 2, 7), (1, 2, 3), (2, 3, 1), (1, 3, 10), (3, 4, 1)]
    )


def make_context(schedule=None, **kwargs):
    return Context(
        argv=["prog"], schedule=schedule or Schedule(num_threads=2), **kwargs
    )


class TestContextBasics:
    def test_load_override(self, diamond):
        context = make_context(graph=diamond)
        assert context.load("ignored") is diamond

    def test_load_edge_list_file(self, diamond, tmp_path):
        path = tmp_path / "g.el"
        save_edge_list(diamond, path)
        loaded = make_context().load(str(path))
        assert loaded.num_edges == diamond.num_edges

    def test_load_npz_file(self, diamond, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(diamond, path)
        loaded = make_context().load(str(path))
        assert np.array_equal(loaded.indices, diamond.indices)

    def test_load_non_string_rejected(self):
        with pytest.raises(GraphItError):
            make_context().load(42)

    def test_atoi_and_vector(self, diamond):
        context = make_context()
        assert context.atoi("17") == 17
        vector = context.vector(diamond, INT_MAX)
        assert vector.shape == (5,)
        assert np.all(vector == INT_MAX)

    def test_div_semantics(self):
        context = make_context()
        assert context.div(7, 2) == 3
        assert context.div(7.0, 2) == 3.5

    def test_out_degrees_copy(self, diamond):
        degrees = make_context().out_degrees(diamond)
        degrees[0] = 99
        assert diamond.out_degree(0) == 2


class TestQueueConstruction:
    def test_lazy_schedule_builds_lazy_queue(self, diamond):
        context = make_context(Schedule(priority_update="lazy", delta=2))
        vector = context.vector(diamond, INT_MAX)
        vector[0] = 0
        queue = context.new_priority_queue(True, "lower_first", vector, 0)
        assert isinstance(queue, LazyBucketQueue)
        assert queue.delta == 2
        assert context.queues == [queue]

    def test_eager_schedule_builds_eager_queue(self, diamond):
        context = make_context(
            Schedule(priority_update="eager_no_fusion", delta=2, num_threads=3)
        )
        vector = context.vector(diamond, INT_MAX)
        vector[0] = 0
        queue = context.new_priority_queue(True, "lower_first", vector, 0)
        assert isinstance(queue, EagerBucketQueue)
        assert queue.num_threads == 3

    def test_coarsening_disallowed_with_nonunit_delta(self, diamond):
        context = make_context(Schedule(priority_update="lazy", delta=4))
        vector = context.vector(diamond, 0)
        with pytest.raises(SchedulingError):
            context.new_priority_queue(False, "lower_first", vector, -1)

    def test_negative_start_means_all_vertices(self, diamond):
        context = make_context(Schedule(priority_update="lazy"))
        vector = context.out_degrees(diamond)
        queue = context.new_priority_queue(False, "lower_first", vector, -1)
        popped = 0
        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0:
                break
            popped += bucket.size
        assert popped == diamond.num_vertices


class TestExterns:
    def test_call_extern(self):
        seen = []
        context = make_context(
            extern_functions={"hook": lambda ctx, value: seen.append((ctx, value))}
        )
        context.call_extern("hook", 42)
        assert seen == [(context, 42)]

    def test_missing_extern_raises(self):
        with pytest.raises(CompileError):
            make_context().call_extern("ghost")


class TestApplyOperators:
    def _sssp_via(self, diamond, schedule):
        context = make_context(schedule, graph=diamond)
        distances = context.vector(diamond, INT_MAX)
        distances[0] = 0
        queue = context.new_priority_queue(True, "lower_first", distances, 0)

        def update_edge(src, dst, weight):
            queue.update_priority_min(dst, int(distances[src]) + weight)

        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0:
                break
            context.apply_update_priority(diamond, bucket, update_edge, queue)
        return distances, context.stats

    def test_push_apply(self, diamond):
        distances, stats = self._sssp_via(
            diamond, Schedule(priority_update="lazy", delta=2, num_threads=2)
        )
        assert distances.tolist() == [0, 2, 5, 6, 7]
        assert stats.relaxations == 2 * diamond.num_edges - 6  # frontier-dependent
        assert stats.global_syncs == 2 * stats.rounds

    def test_pull_apply(self, diamond):
        distances, stats = self._sssp_via(
            diamond,
            Schedule(
                priority_update="lazy", delta=2, direction="DensePull", num_threads=2
            ),
        )
        assert distances.tolist() == [0, 2, 5, 6, 7]

    def test_unweighted_udf_arity(self, diamond):
        context = make_context(Schedule(priority_update="lazy"), graph=diamond)
        seen = []

        def udf(src, dst):
            seen.append((src, dst))

        queue = context.new_priority_queue(
            True, "lower_first", context.vector(diamond, 0), 0
        )
        context.apply_update_priority(
            diamond, np.array([0], dtype=np.int64), udf, queue
        )
        assert seen == [(0, 1), (0, 2)]

    def test_eager_ordered_process(self, diamond):
        context = make_context(
            Schedule(priority_update="eager_with_fusion", delta=2, num_threads=2),
            graph=diamond,
        )
        distances = context.vector(diamond, INT_MAX)
        distances[0] = 0
        queue = context.new_priority_queue(True, "lower_first", distances, 0)

        def update_edge(src, dst, weight):
            queue.update_priority_min(dst, int(distances[src]) + weight)

        context.ordered_process_eager(
            diamond, queue, update_edge, fusion_threshold=1000
        )
        assert distances.tolist() == [0, 2, 5, 6, 7]

    def test_histogram_apply(self):
        clique = from_edges(4, [(u, v) for u in range(4) for v in range(4) if u != v])
        context = make_context(Schedule(priority_update="lazy_constant_sum"), graph=clique)
        degrees = context.out_degrees(clique)
        queue = context.new_priority_queue(False, "lower_first", degrees, -1)
        bucket = queue.dequeue_ready_set()
        k = queue.get_current_priority()

        def transformed(vertex, count):
            priority = int(queue.priority_vector[vertex])
            if priority > k:
                new_priority = max(priority - count, k)
                queue.priority_vector[vertex] = new_priority
                return new_priority
            return None

        context.apply_update_priority_histogram(clique, bucket, transformed, queue)
        assert context.stats.histogram_updates > 0
