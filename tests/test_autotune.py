"""Tests for the autotuner (space, search, tuner)."""

import numpy as np
import pytest

from repro.autotune import EnsembleSearch, ScheduleSpace, autotune, default_space
from repro.errors import AutotuneError
from repro.graph import rmat, road_grid
from repro.midend import Schedule


class TestScheduleSpace:
    def test_size_counts_combinations(self):
        space = ScheduleSpace(
            strategies=("lazy",),
            deltas=(1, 2),
            fusion_thresholds=(100,),
            num_buckets=(128,),
            directions=("SparsePush",),
            parallelizations=("dynamic-vertex-parallel",),
        )
        assert space.size() == 2

    def test_random_schedules_valid(self):
        space = default_space("sssp")
        rng = np.random.default_rng(0)
        for _ in range(50):
            schedule = space.random_schedule(rng)
            schedule.validate()
            if schedule.is_eager:
                assert schedule.direction == "SparsePush"

    def test_mutation_changes_something(self):
        space = default_space("sssp")
        rng = np.random.default_rng(1)
        base = space.random_schedule(rng)
        mutated = space.mutate(base, rng)
        assert mutated != base
        mutated.validate()

    def test_kcore_space_pins_delta(self):
        space = default_space("kcore")
        assert space.deltas == (1,)
        assert "lazy_constant_sum" in space.strategies

    def test_setcover_space_lazy_only(self):
        space = default_space("setcover")
        assert space.strategies == ("lazy",)

    def test_unknown_algorithm(self):
        with pytest.raises(AutotuneError):
            default_space("pagerank")


class TestEnsembleSearch:
    def test_finds_known_optimum(self):
        # Synthetic objective: best at delta == 64, lazy worst.
        space = ScheduleSpace(
            strategies=("eager_no_fusion", "lazy"),
            deltas=tuple(2**k for k in range(10)),
            fusion_thresholds=(100,),
            num_buckets=(128,),
            directions=("SparsePush",),
            parallelizations=("dynamic-vertex-parallel",),
        )

        def objective(schedule: Schedule) -> float:
            penalty = 100.0 if schedule.is_lazy else 0.0
            return abs(np.log2(schedule.delta) - 6) + penalty

        search = EnsembleSearch(space, objective, seed=3)
        best = search.run(max_trials=30)
        assert best.schedule.delta == 64
        assert best.schedule.priority_update == "eager_no_fusion"

    def test_objective_errors_score_infinity(self):
        space = ScheduleSpace(
            strategies=("lazy",),
            deltas=(1, 2),
            fusion_thresholds=(100,),
            num_buckets=(128,),
            directions=("SparsePush",),
            parallelizations=("dynamic-vertex-parallel",),
        )
        from repro.errors import GraphItError

        def objective(schedule: Schedule) -> float:
            if schedule.delta == 2:
                raise GraphItError("boom")
            return 1.0

        best = EnsembleSearch(space, objective, seed=0).run(max_trials=10)
        assert best.cost == 1.0

    def test_no_duplicate_evaluations(self):
        space = ScheduleSpace(
            strategies=("lazy",),
            deltas=(1, 2, 4),
            fusion_thresholds=(100,),
            num_buckets=(128,),
            directions=("SparsePush",),
            parallelizations=("dynamic-vertex-parallel",),
        )
        search = EnsembleSearch(space, lambda s: float(s.delta), seed=0)
        search.run(max_trials=30)
        keys = [EnsembleSearch._key(t.schedule) for t in search.trials]
        assert len(keys) == len(set(keys))


class TestAutotune:
    @pytest.fixture(scope="class")
    def road(self):
        return road_grid(24, 24, seed=4)

    def test_sssp_tuning_close_to_hand_tuned(self, road):
        from repro.algorithms import sssp

        result = autotune("sssp", road, source=0, max_trials=30, seed=1)
        hand = sssp(
            road,
            0,
            Schedule(
                priority_update="eager_with_fusion", delta=2048, num_threads=8
            ),
        ).stats.simulated_time()
        # The paper: the autotuner lands within 5% of hand-tuned schedules;
        # we allow 25% at this tiny scale.
        assert result.best_cost <= 1.25 * hand
        assert result.num_trials <= 30
        assert result.space_size > 1000

    def test_sssp_tuner_picks_fusion_on_road(self, road):
        result = autotune("sssp", road, source=0, max_trials=30, seed=1)
        assert result.best_schedule.priority_update == "eager_with_fusion"

    def test_kcore_tuning_runs(self):
        graph = rmat(8, 12, seed=3).symmetrized()
        result = autotune("kcore", graph, max_trials=8, seed=2)
        assert result.best_schedule.delta == 1

    def test_wall_metric(self, road):
        result = autotune(
            "sssp", road, source=0, max_trials=5, metric="wall", seed=0
        )
        assert result.best_cost > 0

    def test_target_required_for_ppsp(self, road):
        with pytest.raises(AutotuneError):
            autotune("ppsp", road, source=0, max_trials=2)

    def test_ppsp_tuning(self, road):
        result = autotune(
            "ppsp", road, source=0, target=road.num_vertices - 1, max_trials=8, seed=0
        )
        assert result.best_cost < float("inf")
