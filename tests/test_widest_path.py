"""Tests for the widest-path extension (updatePriorityMax + higher_first)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import widest_path, widest_path_reference
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, from_edges, rmat, road_grid
from repro.midend import Schedule

STRATEGIES = ["lazy", "eager_no_fusion", "eager_with_fusion"]


@pytest.fixture(scope="module")
def social():
    graph = rmat(9, 12, seed=3)
    source = int(np.argmax(graph.out_degrees()))
    return graph, source, widest_path_reference(graph, source)


class TestWidestPath:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("delta", [1, 8, 128])
    def test_matches_reference(self, social, strategy, delta):
        graph, source, reference = social
        result = widest_path(
            graph,
            source,
            Schedule(priority_update=strategy, delta=delta, num_threads=4),
        )
        assert np.array_equal(result.distances, reference)

    def test_road_network(self):
        graph = road_grid(14, 16, seed=5)
        reference = widest_path_reference(graph, 0)
        result = widest_path(graph, 0, Schedule(priority_update="eager_with_fusion"))
        assert np.array_equal(result.distances, reference)

    def test_hand_checked_instance(self):
        # 0 -> 1 -> 3 has bottleneck min(10, 2) = 2;
        # 0 -> 2 -> 3 has bottleneck min(4, 5) = 4 (the widest).
        graph = from_edges(4, [(0, 1, 10), (1, 3, 2), (0, 2, 4), (2, 3, 5)])
        result = widest_path(graph, 0, Schedule(delta=1))
        assert result.distances[3] == 4
        assert result.distances[1] == 10
        assert result.distances[2] == 4

    def test_unreachable_reports_zero(self):
        graph = from_edges(3, [(0, 1, 7)])
        result = widest_path(graph, 0)
        assert result.distances[2] == 0

    def test_processes_highest_buckets_first(self, social):
        graph, source, _ = social
        result = widest_path(
            graph, source, Schedule(priority_update="lazy", delta=8)
        )
        # higher_first queues report decreasing current priorities; the
        # stats only keep aggregate rounds, so check monotone work exists.
        assert result.stats.rounds > 0
        assert result.stats.priority_updates > 0

    def test_histogram_schedule_rejected(self, social):
        graph, source, _ = social
        with pytest.raises(SchedulingError):
            widest_path(
                graph, source, Schedule(priority_update="lazy_constant_sum")
            )

    def test_pull_direction_rejected(self, social):
        graph, source, _ = social
        with pytest.raises(SchedulingError):
            widest_path(
                graph,
                source,
                Schedule(priority_update="lazy", direction="DensePull"),
            )

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 11), st.integers(0, 11), st.integers(1, 40)
            ),
            min_size=1,
            max_size=50,
        ),
        delta=st.sampled_from([1, 4, 32]),
        strategy=st.sampled_from(STRATEGIES),
    )
    def test_property_matches_reference(self, edges, delta, strategy):
        builder = GraphBuilder(12)
        for source, dest, weight in edges:
            builder.add_edge(source, dest, weight)
        graph = builder.build(deduplicate="max", remove_self_loops=True)
        reference = widest_path_reference(graph, 0)
        result = widest_path(
            graph, 0, Schedule(priority_update=strategy, delta=delta, num_threads=3)
        )
        assert np.array_equal(result.distances, reference)


class TestWidestThroughCompiler:
    def test_dsl_program_compiles_and_matches(self, social):
        from repro.backend import compile_program
        from repro.lang import program_source

        graph, source, reference = social
        program = compile_program(
            program_source("widest"),
            Schedule(priority_update="eager_with_fusion", delta=8, num_threads=3),
        )
        result = program.run(["widest", "-", str(source)], graph=graph)
        widths = result.vector("width")
        assert np.array_equal(widths, reference)

    def test_cpp_backend_generates_higher_first(self):
        """higher_first lowers through the order-space abstraction: the
        direction sign and the higher-first null sentinel reach the queue,
        and eager routing uses signed floor-divided orders (dense bins are
        infeasible when priorities start at 2^40)."""
        from repro.backend import compile_program
        from repro.lang import program_source

        text = compile_program(
            program_source("widest"), Schedule(delta=8), backend="cpp"
        ).source_text
        assert "kNullHigher" in text
        assert "floorDiv" in text
        assert "std::map<int64_t, std::vector<NodeID>> local_bins" in text
