"""Correctness tests for the observability subsystem (``repro.obs``).

The three load-bearing contracts:

1. **Spans strictly nest per thread** and the Chrome-trace JSON round-trips
   through disk and validates against the event schema.
2. **Off is free and invisible**: with no active tracer the hook sites add
   zero events, ``phase_timings`` stays empty, and the differential-oracle
   statistics of an untraced run are bit-identical to a baseline run.
3. **On is non-perturbing**: a traced run computes the same output vectors
   and the same deterministic statistics as an untraced run.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import obs
from repro.backend.program import compile_program
from repro.graph.generators import rmat
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.schedule import Schedule
from repro.runtime.stats import RuntimeStats


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test must start and end with tracing off."""
    assert obs.get_tracer() is None
    yield
    obs.deactivate()


@pytest.fixture(scope="module")
def graph():
    return rmat(9, 8, seed=5, weights=(1, 4))


def run_sssp(graph, execution="serial", vectorize=True):
    schedule = Schedule(
        priority_update="eager_with_fusion",
        delta=3,
        num_threads=4,
        execution=execution,
    )
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    source = int(np.argmax(graph.out_degrees()))
    return program.run(
        ["sssp", "-", str(source)], graph=graph, vectorize=vectorize
    )


def oracle_dump(stats) -> dict:
    d = dataclasses.asdict(stats)
    d.pop("_current_work", None)
    return d


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
class TestTracerMechanics:
    def test_spans_strictly_nest_per_thread(self, graph):
        with obs.tracing() as tracer:
            run_sssp(graph)
        assert tracer.open_spans() == 0
        by_tid: dict[int, list[dict]] = {}
        for event in tracer.events:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event)
        assert by_tid, "no spans recorded"
        for spans in by_tid.values():
            spans.sort(key=lambda e: (e["ts"], -e["dur"]))
            stack: list[dict] = []
            for event in spans:
                while stack and event["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                    stack.pop()
                if stack:
                    parent = stack[-1]
                    # Strict containment: the child ends no later than the
                    # parent (floating-point ts, so allow equality).
                    assert (
                        event["ts"] + event["dur"]
                        <= parent["ts"] + parent["dur"] + 1e-6
                    )
                stack.append(event)

    def test_manual_nesting_order(self):
        clock = iter(range(100))
        tracer = obs.Tracer(clock=lambda: next(clock))
        with tracer.span("outer", "meta"):
            with tracer.span("inner", "meta") as sp:
                sp["late"] = 42
        inner, outer = [e for e in tracer.events if e["ph"] == "X"]
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["args"]["late"] == 42
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_activate_twice_raises(self):
        with obs.tracing():
            with pytest.raises(RuntimeError):
                obs.activate(obs.Tracer())

    def test_instant_and_counter_events(self):
        with obs.tracing() as tracer:
            obs.instant("tick", "meta", k=1)
            obs.counter("frontier", "meta", size=7)
        phases = [e["ph"] for e in tracer.events if e["ph"] != "M"]
        assert phases == ["i", "C"]

    def test_parallel_run_emits_worker_and_barrier_spans(self, graph):
        with obs.tracing() as tracer:
            run_sssp(graph, execution="parallel")
        names = {e["name"] for e in tracer.events}
        assert "worker.produce" in names
        assert "barrier.wait" in names
        assert "commit.replay" in names
        worker_tids = {
            e["tid"] for e in tracer.events if e["name"] == "worker.produce"
        }
        # Produce spans run on worker threads, not the coordinator (tid 0).
        assert worker_tids and 0 not in worker_tids

    def test_compiler_and_bucket_spans_present(self, graph):
        with obs.tracing() as tracer:
            run_sssp(graph)
        names = {e["name"] for e in tracer.events}
        for expected in (
            "lex",
            "parse",
            "typecheck",
            "midend.vectorize",
            "codegen.python",
            "program.run",
            "bucket.advance",
        ):
            assert expected in names, f"missing span {expected}"
        cats = {e["cat"] for e in tracer.events}
        assert {"compiler", "bucket", "runtime"} <= cats


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def test_round_trip_and_schema(self, graph, tmp_path):
        with obs.tracing() as tracer:
            run_sssp(graph)
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), tracer, metadata={"k": "v"})
        payload = obs.load_chrome_trace(str(path))  # validates on load
        assert payload["metadata"] == {"k": "v"}
        assert payload["displayTimeUnit"] == "ms"
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == payload
        assert obs.validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) == len(tracer.events)

    def test_validator_rejects_malformed(self):
        assert obs.validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        assert obs.validate_chrome_trace([1, 2, 3])
        good = {
            "traceEvents": [
                {
                    "name": "a",
                    "cat": "meta",
                    "ph": "X",
                    "ts": 0,
                    "dur": 1,
                    "pid": 1,
                    "tid": 0,
                }
            ]
        }
        assert obs.validate_chrome_trace(good) == []
        bad_phase = {"traceEvents": [dict(good["traceEvents"][0], ph="Z")]}
        assert obs.validate_chrome_trace(bad_phase)
        with pytest.raises(ValueError):
            obs.assert_valid_chrome_trace(bad_phase)

    def test_self_profile_accounts_child_time(self):
        clock = iter([0, 0, 10, 40, 100])  # origin, outer+, inner, inner, outer-
        tracer = obs.Tracer(clock=lambda: next(clock))
        with tracer.span("outer", "meta"):
            with tracer.span("inner", "meta"):
                pass
        rows = {r.name: r for r in obs.self_profile(tracer.events)}
        assert rows["inner"].total_us == pytest.approx(30e6)
        assert rows["outer"].total_us == pytest.approx(100e6)
        assert rows["outer"].self_us == pytest.approx(70e6)
        table = obs.format_profile(obs.self_profile(tracer.events))
        assert "outer" in table and "inner" in table


# ----------------------------------------------------------------------
# Zero overhead / non-perturbation
# ----------------------------------------------------------------------
class TestTracingInvisibility:
    def test_off_by_default_and_null_span_shared(self):
        from repro.obs import flight

        assert obs.get_tracer() is None
        # With both the tracer and the flight recorder off, the hooks fall
        # through to one shared stateless null span.
        saved = flight.get_recorder()
        flight.set_recorder(None)
        try:
            first = obs.span("anything", "meta", x=1)
            second = obs.span("other", "bucket")
            assert first is second  # the shared stateless null span
            with first as sp:
                assert sp is None
        finally:
            flight.set_recorder(saved)

    def test_untraced_spans_feed_the_flight_recorder(self):
        """With tracing off but the recorder on, span() still records —
        the always-on forensics ring the crash dump is built from."""
        from repro.obs import flight

        saved = flight.get_recorder()
        recorder = flight.FlightRecorder(capacity=8)
        flight.set_recorder(recorder)
        try:
            assert obs.get_tracer() is None
            with obs.span("bucket.advance", "bucket", order=3) as sp:
                assert sp is not None  # args dict, mutable like a tracer span
            events = recorder.events()
            assert [e["name"] for e in events] == ["bucket.advance"]
            assert events[0]["args"]["order"] == 3
        finally:
            flight.set_recorder(saved)

    def test_untraced_run_keeps_stats_bit_identical(self, graph):
        baseline = run_sssp(graph)
        again = run_sssp(graph)
        assert oracle_dump(baseline.stats) == oracle_dump(again.stats)
        assert baseline.stats.phase_timings == []
        assert again.stats.phase_timings == []

    def test_traced_run_does_not_perturb_outputs_or_counters(self, graph):
        untraced = run_sssp(graph)
        with obs.tracing():
            traced = run_sssp(graph)
        assert np.array_equal(
            untraced.vector("dist"), traced.vector("dist")
        )
        untraced_dump = oracle_dump(untraced.stats)
        traced_dump = oracle_dump(traced.stats)
        # The ONLY divergence a tracer may introduce is phase_timings
        # (timestamps exist only while tracing).
        assert traced_dump.pop("phase_timings")
        untraced_dump.pop("phase_timings")
        assert untraced_dump == traced_dump

    def test_differential_oracle_unaffected_by_prior_tracing(self, graph):
        """A tracing session must leave no residue: the parallel-vs-oracle
        bit-identity contract holds after tracing is deactivated."""
        with obs.tracing():
            run_sssp(graph, execution="parallel")
        oracle = run_sssp(graph, vectorize=False)
        parallel = run_sssp(graph, execution="parallel")
        assert np.array_equal(oracle.vector("dist"), parallel.vector("dist"))
        skip = set(RuntimeStats.__dataclass_fields__) & {
            "execution",
            "parallel_rounds",
            "barrier_waits",
            "barrier_wait_time",
            "worker_wall_time",
        }
        o = {k: v for k, v in oracle_dump(oracle.stats).items() if k not in skip}
        p = {k: v for k, v in oracle_dump(parallel.stats).items() if k not in skip}
        assert o == p

    def test_harness_run_cell_drops_trace_artifact(self, tmp_path):
        from repro.eval.harness import run_cell

        path = tmp_path / "cell.json"
        cell = run_cell("graphit", "sssp", "MA", trials=1, trace_path=str(path))
        assert cell is not None
        assert obs.get_tracer() is None
        payload = obs.load_chrome_trace(str(path))
        assert payload["metadata"]["algorithm"] == "sssp"
        names = {e["name"] for e in payload["traceEvents"]}
        # The framework presets drive the library algorithms directly, so
        # the trace carries harness + bucket spans (no compiler spans).
        assert "cell.run" in names and "bucket.advance" in names

    def test_stat_span_records_phases_only_under_tracer(self, graph):
        with obs.tracing():
            traced = run_sssp(graph)
        phases = [entry["phase"] for entry in traced.stats.phase_timings]
        assert "program.run" in phases
        assert all(
            entry["dur_us"] >= 0 and entry["start_us"] >= 0
            for entry in traced.stats.phase_timings
        )
