"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edges, rmat, road_grid


@pytest.fixture(autouse=True)
def _isolated_state_dir(tmp_path, monkeypatch):
    """Route flight-recorder forensics dumps into the test's tmp dir.

    Failure-path tests exercise ``repro.cli.main`` error handling, which
    dumps ``$REPRO_STATE_DIR/last_run.json`` — without this, those dumps
    would land in a ``.repro/`` directory inside the repository.
    """
    monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / ".repro"))


@pytest.fixture
def diamond_graph():
    """A 5-vertex weighted DAG with two competing paths.

    Shortest distances from 0: [0, 2, 5, 6, 7].
    """
    return from_edges(
        5, [(0, 1, 2), (0, 2, 7), (1, 2, 3), (2, 3, 1), (1, 3, 10), (3, 4, 1)]
    )


@pytest.fixture
def small_social():
    """An R-MAT graph big enough to exercise all code paths (~2k vertices)."""
    return rmat(11, 16, seed=3)


@pytest.fixture
def small_social_source(small_social):
    """A high-out-degree source so most of the graph is reachable."""
    return int(np.argmax(small_social.out_degrees()))


@pytest.fixture
def small_road():
    """A road grid with a meaningful diameter (~30x30)."""
    return road_grid(28, 30, seed=4)


@pytest.fixture
def small_symmetric(small_social):
    """Symmetrized social graph for k-core / SetCover."""
    return small_social.symmetrized()
