"""Differential tests for the native (compiled shared-library) path.

The contract under test: for every ordered program × schedule combination,
``Schedule(execution="native")`` produces output vectors **bit-identical**
to the sequential scalar oracle (``vectorize=False``), because the output
of an ordered algorithm is a schedule-independent fixpoint.  Interpreter
statistics (rounds, relaxations, ...) are interpreter-only by design and
are never compared.

Without a C++ toolchain every test here **skips** (never fails) — the same
machines get the runtime's graceful ``N101`` degradation, which has its own
tests below that run everywhere.
"""

import os
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.backend import compile_program
from repro.backend.native import (
    NativeUnavailable,
    discover_toolchain,
    generate_native_cpp,
    native_output_names,
    reset_toolchain_cache,
)
from repro.errors import SchedulingError
from repro.graph import from_edges, rmat
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule

HAS_CXX = any(shutil.which(c) for c in ("g++", "clang++", "c++"))
needs_toolchain = pytest.mark.skipif(
    not HAS_CXX, reason="no C++ toolchain (g++/clang++/c++); native tests skip"
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", autouse=True)
def kernel_cache(tmp_path_factory):
    """Isolate the on-disk kernel cache from the user's ~/.cache."""
    path = tmp_path_factory.mktemp("kernels")
    saved = os.environ.get("REPRO_KERNEL_CACHE")
    os.environ["REPRO_KERNEL_CACHE"] = str(path)
    yield path
    if saved is None:
        os.environ.pop("REPRO_KERNEL_CACHE", None)
    else:
        os.environ["REPRO_KERNEL_CACHE"] = saved


@pytest.fixture(scope="module")
def social():
    return rmat(10, 16, seed=3, weights=(1, 4))


@pytest.fixture(scope="module")
def social_start(social):
    return int(np.argmax(social.out_degrees()))


def run_both(program_name, schedule, graph, args):
    """Run native and the scalar oracle; return (native, oracle, program)."""
    source = ALL_PROGRAMS[program_name]
    oracle_prog = compile_program(source, schedule)
    native_prog = compile_program(source, schedule.with_(execution="native"))
    oracle = oracle_prog.run(args, graph=graph, vectorize=False)
    native = native_prog.run(args, graph=graph)
    return native, oracle, native_prog


def assert_vectors_identical(native, oracle):
    compared = 0
    for name, value in oracle.globals.items():
        if not isinstance(value, np.ndarray):
            continue
        np.testing.assert_array_equal(
            native.globals[name], value, err_msg=f"vector {name!r} diverged"
        )
        compared += 1
    assert compared, "program produced no output vectors to compare"


# ---------------------------------------------------------------------------
# The differential matrix (ISSUE: SSSP / wBFS / widest-path × lazy / eager)
# ---------------------------------------------------------------------------

MATRIX = [
    ("sssp", Schedule(priority_update="lazy", delta=4)),
    ("sssp", Schedule(priority_update="eager_no_fusion", delta=4)),
    ("sssp", Schedule(priority_update="eager_with_fusion", delta=4)),
    ("sssp", Schedule(priority_update="lazy", delta=4, direction="DensePull")),
    ("wbfs", Schedule(priority_update="lazy", delta=1)),
    ("wbfs", Schedule(priority_update="eager_no_fusion", delta=1)),
    ("widest", Schedule(priority_update="lazy", delta=2)),
    ("widest", Schedule(priority_update="eager_no_fusion", delta=2)),
    ("kcore", Schedule(priority_update="lazy_constant_sum", num_buckets=64)),
    ("ppsp", Schedule(priority_update="eager_with_fusion", delta=4)),
]


def _matrix_id(case):
    name, schedule = case
    tag = schedule.priority_update
    if schedule.direction != "SparsePush":
        tag += f"-{schedule.direction}"
    return f"{name}-{tag}"


@needs_toolchain
@pytest.mark.parametrize("case", MATRIX, ids=_matrix_id)
def test_native_matches_scalar_oracle(case, social, social_start):
    name, schedule = case
    args = ["prog", "-", str(social_start)]
    if name == "ppsp":
        args.append(str((social_start + 7) % social.num_vertices))
    graph = social.symmetrized() if name == "kcore" else social
    native, oracle, program = run_both(name, schedule, graph, args)
    assert program.native_fallback_reason is None
    assert_vectors_identical(native, oracle)


EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.gt")
)


@needs_toolchain
@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_every_example_native_matches_oracle(example, social, social_start):
    """Acceptance bar: every checked-in .gt example is bit-identical to the
    scalar oracle under its own inline schedule, run natively."""
    source = example.read_text()
    base = compile_program(source, None).schedule
    graph = social.symmetrized() if "kcore" in example.stem else social
    args = ["prog", "-", str(social_start)]
    oracle = compile_program(source, base).run(
        args, graph=graph, vectorize=False
    )
    native_prog = compile_program(source, base.with_(execution="native"))
    native = native_prog.run(args, graph=graph)
    assert native_prog.native_fallback_reason is None
    assert_vectors_identical(native, oracle)


@needs_toolchain
def test_repeated_runs_and_graph_swap(social, social_start):
    """Per-process kernel state (transpose caches, queue globals) must be
    re-derived on every entry call, including for a different graph."""
    schedule = Schedule(
        priority_update="lazy", delta=4, direction="DensePull"
    )
    args = ["prog", "-", str(social_start)]
    native1, oracle1, program = run_both("sssp", schedule, social, args)
    assert_vectors_identical(native1, oracle1)
    # Same compiled program object, different graph: the run-stamped
    # transpose must be rebuilt, not reused.
    other = rmat(9, 16, seed=7, weights=(1, 4))
    other_start = int(np.argmax(other.out_degrees()))
    oracle_prog = compile_program(ALL_PROGRAMS["sssp"], schedule)
    args2 = ["prog", "-", str(other_start)]
    oracle2 = oracle_prog.run(args2, graph=other, vectorize=False)
    native2 = program.run(args2, graph=other)
    assert_vectors_identical(native2, oracle2)
    # And back to the first graph — still identical.
    native3 = program.run(args, graph=social)
    assert_vectors_identical(native3, oracle1)


@needs_toolchain
def test_second_invocation_hits_kernel_cache(social, social_start, monkeypatch):
    """A repeated (program, schedule) pair must spawn **no** compiler
    subprocess — the disk cache serves the kernel."""
    import repro.backend.native.build as build_mod

    schedule = Schedule(priority_update="lazy", delta=3, execution="native")
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    args = ["prog", "-", str(social_start)]
    first = program.run(args, graph=social)
    assert program.native_fallback_reason is None

    def no_subprocess(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("cache hit must not spawn a compiler subprocess")

    monkeypatch.setattr(build_mod.subprocess, "run", no_subprocess)
    second = program.run(args, graph=social)
    assert_vectors_identical(second, first)


@needs_toolchain
def test_native_runs_from_graph_file(tmp_path, social, social_start):
    """The CLI-style path: graph loaded from argv[1] instead of in-memory."""
    from repro.graph import save_edge_list

    graph_file = tmp_path / "g.el"
    save_edge_list(social, graph_file)
    schedule = Schedule(priority_update="lazy", delta=4, execution="native")
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    from_file = program.run(["prog", str(graph_file), str(social_start)])
    assert program.native_fallback_reason is None
    oracle = compile_program(
        ALL_PROGRAMS["sssp"], schedule.with_(execution="serial")
    ).run(["prog", "-", str(social_start)], graph=social, vectorize=False)
    assert_vectors_identical(from_file, oracle)


# ---------------------------------------------------------------------------
# Degradation ladder (these run with or without a toolchain)
# ---------------------------------------------------------------------------


@pytest.fixture
def no_toolchain(monkeypatch):
    """Simulate a compiler-less machine via the exclusive CXX override."""
    reset_toolchain_cache()
    monkeypatch.setenv("REPRO_NATIVE_CXX", "/nonexistent/repro-no-cxx")
    yield
    reset_toolchain_cache()


def test_no_toolchain_falls_back_with_n101(
    no_toolchain, social, social_start, capsys
):
    schedule = Schedule(priority_update="lazy", delta=4, execution="native")
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    args = ["prog", "-", str(social_start)]
    result = program.run(args, graph=social)
    assert program.native_fallback_reason is not None
    assert "toolchain" in program.native_fallback_reason
    assert "N101" in capsys.readouterr().err
    # The fallback is the serial vectorized Python path: same fixpoint.
    oracle = compile_program(
        ALL_PROGRAMS["sssp"], schedule.with_(execution="serial")
    ).run(args, graph=social, vectorize=False)
    assert_vectors_identical(result, oracle)


def test_unordered_program_falls_back_with_n101(social, social_start, capsys):
    """bellman_ford has no priority queue — the C++ backend cannot lower it,
    so native mode degrades instead of erroring."""
    schedule = Schedule(execution="native")
    program = compile_program(ALL_PROGRAMS["bellman_ford"], schedule)
    result = program.run(["prog", "-", str(social_start)], graph=social)
    assert program.native_fallback_reason is not None
    assert "N101" in capsys.readouterr().err
    assert isinstance(result.globals.get("dist"), np.ndarray)


def test_generate_for_unordered_raises_native_unavailable():
    from repro.backend.native.runner import generate_for_plan

    program = compile_program(ALL_PROGRAMS["bellman_ford"], Schedule())
    with pytest.raises(NativeUnavailable):
        generate_for_plan(program.plan)


def test_sanitize_plus_native_rejected():
    with pytest.raises(SchedulingError, match="sanitiz"):
        Schedule(execution="native", sanitize=True)


def test_native_output_names_follow_declaration_order():
    """The ABI's out-buffer order is the program's vector declaration
    order — the runner and the kernel must agree on it."""
    program = compile_program(
        ALL_PROGRAMS["widest"], Schedule(priority_update="lazy", delta=2)
    )
    names = native_output_names(program.plan)
    assert "width" in names


def test_generated_source_embeds_effect_summary():
    program = compile_program(
        ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy", delta=4)
    )
    text = generate_native_cpp(program.plan)
    assert "abi_version: 1" in text
    assert "effect_summary:" in text
    assert 'extern "C" int64_t repro_native_run(' in text
    assert "repro_native_abi_version" in text


def test_dead_knobs_under_native_flagged():
    """parallelization / chunk_size only steer the Python runtime; under
    execution=native they are dead and lint says so (S002)."""
    from repro.lang.parser import parse
    from repro.midend.analysis.diagnostics import check_schedule_compat
    from repro.midend.schedule import SchedulingProgram

    scheduling = (
        SchedulingProgram()
        .config_execution("s1", "native")
        .config_apply_parallelization("s1", "static-vertex-parallel")
        .config_chunk_size("s1", 32)
    )
    diags = check_schedule_compat(parse(ALL_PROGRAMS["sssp"]), scheduling)
    s002 = [d for d in diags if d.code == "S002"]
    messages = " | ".join(d.message for d in s002)
    assert "parallelization" in messages
    assert "chunk_size" in messages


def test_diamond_exact_distances():
    """Tiny deterministic graph with known answers, through the whole
    native path when a toolchain exists, otherwise via the N101 fallback —
    either way the answers must be exact."""
    graph = from_edges(
        5, [(0, 1, 2), (0, 2, 7), (1, 2, 3), (2, 3, 1), (1, 3, 10), (3, 4, 1)]
    )
    schedule = Schedule(priority_update="lazy", delta=2, execution="native")
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    result = program.run(["prog", "-", "0"], graph=graph)
    np.testing.assert_array_equal(result.vector("dist"), [0, 2, 5, 6, 7])
    if HAS_CXX:
        assert program.native_fallback_reason is None


@needs_toolchain
def test_toolchain_probe_is_cached(monkeypatch):
    """discover_toolchain probes once per process."""
    reset_toolchain_cache()
    first = discover_toolchain()
    assert first is not None

    import repro.backend.native.toolchain as tc_mod

    def no_probe(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("cached probe must not re-run the compiler")

    monkeypatch.setattr(tc_mod.subprocess, "run", no_probe)
    assert discover_toolchain() is first
