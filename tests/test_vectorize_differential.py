"""Differential tests: vectorized batch kernels vs the scalar interpreter.

The UDF vectorization pass promises *bit-identical* behaviour: for every
algorithm whose apply UDF it classifies as vectorizable, running the
compiled program with ``vectorize=True`` must produce the same output
vectors AND the same :class:`RuntimeStats` dump (every counter, including
the per-round work lists) as the scalar reference interpreter
(``vectorize=False``).  These tests sweep the six evaluated algorithms
across the bucketing strategies × direction × weighted/unweighted grid and
assert exactly that.
"""

import dataclasses
import functools

import numpy as np
import pytest

from repro.backend import compile_program
from repro.backend.extern_library import astar_externs
from repro.graph import rmat, road_grid
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule

# Custom whole-edgeset relaxation: the plain_min kernel shape with a
# source-side guard.  The guard matters for exactness beyond termination:
# unvisited sources hold INT_MAX, and ``INT_MAX + weight`` wraps in int64,
# so the scalar and batch paths must agree on skipping those edges.
PLAIN_RELAX = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;

func relax(src : Vertex, dst : Vertex, weight : int)
    if dist[src] != INT_MAX
        var new_dist : int = dist[src] + weight;
        if new_dist < dist[dst]
            dist[dst] = new_dist;
        end
    end
end

func main()
    var start_vertex : int = atoi(argv[2]);
    dist[start_vertex] = 0;
    var i : int = 0;
    while i < 6
        #s1# edges.apply(relax);
        i = i + 1;
    end
end
"""


def stats_dump(stats):
    dump = dataclasses.asdict(stats)
    dump.pop("_current_work", None)
    return dump


def run_both(source, schedule, args, graph, externs=None):
    """Compile once, run scalar and vectorized, assert bit-identity."""
    program = compile_program(source, schedule)
    scalar = program.run(
        list(args), graph=graph, extern_functions=externs, vectorize=False
    )
    vector = program.run(
        list(args), graph=graph, extern_functions=externs, vectorize=True
    )
    assert scalar.context.vectorized_applies == 0
    assert stats_dump(scalar.stats) == stats_dump(vector.stats)
    for name, value in scalar.globals.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, vector.globals[name]), name
    assert [q.priority_inversions for q in scalar.context.queues] == [
        q.priority_inversions for q in vector.context.queues
    ]
    return scalar, vector


@pytest.fixture(scope="module")
def weighted_graph():
    return rmat(8, 8, seed=3)


@pytest.fixture(scope="module")
def unweighted_graph():
    return rmat(8, 8, seed=3, weights=None)


@pytest.fixture(scope="module")
def symmetric_graph():
    return rmat(8, 8, seed=3, weights=None).symmetrized()


@pytest.fixture(scope="module")
def road():
    return road_grid(12, 12, seed=5)


SSSP_SCHEDULES = {
    "lazy": Schedule(priority_update="lazy", delta=3),
    "lazy_pull": Schedule(priority_update="lazy", direction="DensePull", delta=3),
    "eager": Schedule(priority_update="eager_no_fusion", delta=3),
    "eager_fusion": Schedule(priority_update="eager_with_fusion", delta=3),
}

KCORE_SCHEDULES = {
    "lazy": Schedule(priority_update="lazy"),
    "lazy_constant_sum": Schedule(priority_update="lazy_constant_sum"),
    "eager": Schedule(priority_update="eager_no_fusion"),
}


class TestPriorityMinMaxFamily:
    @pytest.mark.parametrize("sched", sorted(SSSP_SCHEDULES))
    @pytest.mark.parametrize("weighted", [True, False], ids=["weighted", "unweighted"])
    def test_sssp(self, sched, weighted, weighted_graph, unweighted_graph):
        graph = weighted_graph if weighted else unweighted_graph
        _, vector = run_both(
            ALL_PROGRAMS["sssp"], SSSP_SCHEDULES[sched], ["prog", "-", "0"], graph
        )
        assert vector.context.vectorized_applies > 0
        assert vector.context.scalar_applies == 0

    @pytest.mark.parametrize("sched", sorted(SSSP_SCHEDULES))
    def test_wbfs(self, sched, unweighted_graph):
        # wBFS is SSSP with delta pinned to 1 on an unweighted graph.
        schedule = SSSP_SCHEDULES[sched].with_(delta=1)
        _, vector = run_both(
            ALL_PROGRAMS["wbfs"], schedule, ["prog", "-", "0"], unweighted_graph
        )
        assert vector.context.vectorized_applies > 0

    @pytest.mark.parametrize("sched", sorted(SSSP_SCHEDULES))
    @pytest.mark.parametrize("weighted", [True, False], ids=["weighted", "unweighted"])
    def test_ppsp(self, sched, weighted, weighted_graph, unweighted_graph):
        graph = weighted_graph if weighted else unweighted_graph
        _, vector = run_both(
            ALL_PROGRAMS["ppsp"],
            SSSP_SCHEDULES[sched],
            ["prog", "-", "0", "99"],
            graph,
        )
        assert vector.context.vectorized_applies > 0

    @pytest.mark.parametrize("sched", sorted(SSSP_SCHEDULES))
    def test_widest(self, sched, weighted_graph):
        # updatePriorityMax / higher_first exercises the write_max kernel
        # (including the null-priority success rule).
        schedule = SSSP_SCHEDULES[sched].with_(delta=1)
        _, vector = run_both(
            ALL_PROGRAMS["widest"], schedule, ["prog", "-", "0"], weighted_graph
        )
        assert vector.context.vectorized_applies > 0


class TestGuardedAndSum:
    @pytest.mark.parametrize("sched", ["lazy", "eager"])
    def test_astar(self, sched, road):
        schedule = SSSP_SCHEDULES[sched].with_(delta=2)
        _, vector = run_both(
            ALL_PROGRAMS["astar"],
            schedule,
            ["prog", "-", "0", str(road.num_vertices - 1)],
            road,
            externs=astar_externs(),
        )
        assert vector.context.vectorized_applies > 0

    @pytest.mark.parametrize("sched", sorted(KCORE_SCHEDULES))
    def test_kcore(self, sched, symmetric_graph):
        _, vector = run_both(
            ALL_PROGRAMS["kcore"],
            KCORE_SCHEDULES[sched],
            ["prog", "-"],
            symmetric_graph,
        )
        assert vector.context.vectorized_applies > 0
        assert vector.context.scalar_applies == 0


class TestFallbackAndPlain:
    def test_bellman_ford_falls_back(self, weighted_graph):
        # The scalar-global write (``changed = 1``) is outside every batch
        # pattern: the program must still run — on the scalar interpreter —
        # and produce identical results under both flags.
        scalar, vector = run_both(
            ALL_PROGRAMS["bellman_ford"],
            Schedule(priority_update="lazy"),
            ["prog", "-", "0"],
            weighted_graph,
        )
        assert vector.context.vectorized_applies == 0
        assert vector.context.scalar_applies > 0

    def test_plain_min_apply_edges(self, weighted_graph):
        _, vector = run_both(
            PLAIN_RELAX,
            Schedule(priority_update="lazy"),
            ["prog", "-", "0"],
            weighted_graph,
        )
        assert vector.context.vectorized_applies > 0
        assert vector.context.scalar_applies == 0

    def test_vectorize_false_forces_scalar(self, weighted_graph):
        program = compile_program(ALL_PROGRAMS["sssp"], SSSP_SCHEDULES["lazy"])
        result = program.run(["prog", "-", "0"], graph=weighted_graph, vectorize=False)
        assert result.context.vectorized_applies == 0
        assert result.context.scalar_applies > 0


class TestUdfArity:
    def test_partial_udf(self):
        from repro.backend.runtime_support import Context

        context = Context(argv=["prog"], schedule=Schedule(num_threads=2))

        def relax(scale, src, dst, weight):
            return None

        bound = functools.partial(relax, 2)
        # functools.partial has no __code__; inspect.signature sees the
        # remaining positional parameters.
        assert context._udf_arity(bound) == 3
        assert context._udf_arity(lambda s, d: None) == 2
        # Cached on repeat lookups.
        assert context._udf_arity(bound) == 3

    def test_partial_udf_runs_through_apply(self, weighted_graph):
        from repro.backend.runtime_support import Context

        context = Context(argv=["prog"], schedule=Schedule(priority_update="lazy"))
        seen = []

        def record(tag, src, dst, weight):
            seen.append((tag, src, dst, weight))

        context.apply_edges(weighted_graph, functools.partial(record, "w"))
        assert len(seen) == weighted_graph.num_edges
        assert all(entry[0] == "w" for entry in seen)

    def test_callable_object_udf(self):
        from repro.backend.runtime_support import Context

        context = Context(argv=["prog"], schedule=Schedule(num_threads=2))

        class Relax:
            def __call__(self, src, dst, weight):
                return None

        assert context._udf_arity(Relax()) == 3
