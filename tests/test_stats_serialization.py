"""Serialization contract of :class:`RuntimeStats`.

The satellite fix this pins down: the parallel-only fields must serialize
deterministically — stable key order, string-keyed ``worker_wall_time`` that
survives a JSON round trip losslessly — and the oracle-comparison dump
(``deterministic_dict``) must exclude every wall-clock-dependent field.
"""

from __future__ import annotations

import json

from repro.runtime.stats import (
    PARALLEL_ONLY_FIELDS,
    WALL_CLOCK_FIELDS,
    RuntimeStats,
)


def populated_stats() -> RuntimeStats:
    stats = RuntimeStats(num_threads=4)
    stats.begin_round()
    stats.add_thread_work(0, 10)
    stats.add_thread_work(3, 7)
    stats.end_round(syncs=2, fused=1)
    stats.relaxations = 17
    stats.priority_updates = 5
    stats.execution = "parallel"
    stats.record_parallel_round({2: 0.5, 0: 0.25}, barrier_wait=0.125)
    stats.record_phase("apply.push", 10.0, 250.0)
    return stats


class TestToDict:
    def test_key_order_is_field_declaration_order(self):
        keys = list(populated_stats().to_dict())
        expected = [
            name
            for name in RuntimeStats.__dataclass_fields__
            if not name.startswith("_")
        ]
        assert keys == expected

    def test_key_order_stable_regardless_of_population_order(self):
        a = RuntimeStats()
        b = populated_stats()
        assert list(a.to_dict()) == list(b.to_dict())

    def test_private_accumulator_never_serialized(self):
        stats = populated_stats()
        stats.begin_round()  # leave a round open
        assert "_current_work" not in stats.to_dict()

    def test_worker_wall_time_string_keys_sorted_numerically(self):
        stats = RuntimeStats(num_threads=16)
        stats.record_parallel_round(
            {10: 1.0, 2: 2.0, 0: 3.0}, barrier_wait=0.0
        )
        dumped = stats.to_dict()["worker_wall_time"]
        assert list(dumped) == ["0", "2", "10"]
        assert all(isinstance(k, str) for k in dumped)

    def test_json_round_trip_lossless(self):
        stats = populated_stats()
        restored = RuntimeStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert restored.to_dict() == stats.to_dict()
        # int keys restored on the live object
        assert restored.worker_wall_time == {0: 0.25, 2: 0.5}
        assert restored.phase_timings == stats.phase_timings

    def test_from_dict_tolerates_missing_and_unknown_fields(self):
        restored = RuntimeStats.from_dict(
            {"rounds": 3, "not_a_field": 99, "relaxations": 7}
        )
        assert restored.rounds == 3
        assert restored.relaxations == 7
        assert restored.phase_timings == []
        assert restored.worker_wall_time == {}


class TestDeterministicDict:
    def test_excludes_parallel_only_and_wall_clock_fields(self):
        dump = populated_stats().deterministic_dict()
        for name in set(PARALLEL_ONLY_FIELDS) | set(WALL_CLOCK_FIELDS):
            assert name not in dump
        assert "rounds" in dump and "relaxations" in dump

    def test_oracle_and_parallel_agree_after_wall_clock_divergence(self):
        oracle = populated_stats()
        parallel = populated_stats()
        # Perturb only nondeterministic observables.
        parallel.barrier_wait_time += 1.0
        parallel.worker_wall_time[2] += 9.0
        parallel.record_phase("apply.push", 99.0, 1.0)
        parallel.parallel_rounds += 5
        assert oracle.deterministic_dict() == parallel.deterministic_dict()

    def test_deterministic_dict_diverges_on_real_counters(self):
        a = populated_stats()
        b = populated_stats()
        b.relaxations += 1
        assert a.deterministic_dict() != b.deterministic_dict()


class TestMerge:
    def test_merge_extends_phase_timings(self):
        a = populated_stats()
        b = populated_stats()
        a.merge(b)
        assert len(a.phase_timings) == 2
        assert a.worker_wall_time == {0: 0.5, 2: 1.0}
