"""Unit tests for VertexSet (sparse/dense frontier layouts)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import VertexSet


def test_sparse_construction_sorts_and_dedups():
    vertex_set = VertexSet(10, vertices=[5, 1, 5, 3])
    assert vertex_set.to_sparse().tolist() == [1, 3, 5]
    assert len(vertex_set) == 3


def test_dense_construction():
    bool_map = np.zeros(6, dtype=bool)
    bool_map[[0, 4]] = True
    vertex_set = VertexSet(6, bool_map=bool_map)
    assert vertex_set.to_sparse().tolist() == [0, 4]


def test_layout_conversion_roundtrip():
    vertex_set = VertexSet(8, vertices=[2, 6])
    dense = vertex_set.to_dense()
    assert dense.tolist() == [False, False, True, False, False, False, True, False]
    back = VertexSet(8, bool_map=dense)
    assert back == vertex_set


def test_dense_copy_is_defensive():
    bool_map = np.zeros(4, dtype=bool)
    vertex_set = VertexSet(4, bool_map=bool_map)
    bool_map[0] = True
    assert len(vertex_set) == 0


def test_constructors():
    assert len(VertexSet.empty(5)) == 0
    assert len(VertexSet.full(5)) == 5
    assert VertexSet.single(5, 3).to_sparse().tolist() == [3]


def test_membership():
    vertex_set = VertexSet(10, vertices=[1, 2])
    assert 1 in vertex_set
    assert 3 not in vertex_set
    assert 99 not in vertex_set


def test_iteration():
    assert list(VertexSet(5, vertices=[4, 0])) == [0, 4]


def test_equality_and_hash():
    a = VertexSet(5, vertices=[1, 2])
    b = VertexSet(5, bool_map=np.array([False, True, True, False, False]))
    assert a == b
    assert hash(a) == hash(b)
    assert a != VertexSet(5, vertices=[1])
    assert a != VertexSet(6, vertices=[1, 2])


def test_set_algebra():
    a = VertexSet(8, vertices=[1, 2, 3])
    b = VertexSet(8, vertices=[3, 4])
    assert a.union(b).to_sparse().tolist() == [1, 2, 3, 4]
    assert a.intersection(b).to_sparse().tolist() == [3]
    assert a.difference(b).to_sparse().tolist() == [1, 2]


def test_algebra_rejects_mismatched_universe():
    with pytest.raises(GraphError):
        VertexSet(5, vertices=[1]).union(VertexSet(6, vertices=[1]))


def test_invalid_inputs():
    with pytest.raises(GraphError):
        VertexSet(5)
    with pytest.raises(GraphError):
        VertexSet(5, vertices=[1], bool_map=np.zeros(5, dtype=bool))
    with pytest.raises(GraphError):
        VertexSet(5, vertices=[9])
    with pytest.raises(GraphError):
        VertexSet(5, bool_map=np.zeros(4, dtype=bool))


def test_is_sparse_tracks_materialization():
    vertex_set = VertexSet(4, bool_map=np.zeros(4, dtype=bool))
    assert not vertex_set.is_sparse
    vertex_set.to_sparse()
    assert vertex_set.is_sparse
