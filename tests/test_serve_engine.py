"""The serving engine: validation, cache, coalescing, admission, mutation.

Everything here drives :class:`repro.serve.engine.ServeEngine` directly
(no sockets) so the coordination semantics are pinned at the layer that
implements them:

* query validation rejects malformed specs before any traversal;
* the result cache answers repeats without recomputing;
* concurrent identical queries coalesce into one traversal;
* the admission queue rejects past its budget (and only then) and never
  drops an accepted request;
* ``mutate`` bumps the epoch, invalidates the cache, and repopulates it
  from resumed incremental sessions — with values bit-matching a solo
  run on the post-mutation graph.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.backend.program import compile_program
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.schedule import Schedule
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.engine import Backpressure, QuerySpec, ServeEngine


def make_graph(scale: int = 8) -> CSRGraph:
    return rmat(scale, 16, seed=0, weights=(1, 4))


def spec(program: str = "sssp", source: int | None = 0, **params) -> QuerySpec:
    document: dict = {"program": program}
    if source is not None:
        document["source"] = source
    document.update(params)
    return QuerySpec.from_params(document)


def oracle_vector(program: str, graph: CSRGraph, source=None, target=None,
                  schedule: Schedule | None = None) -> np.ndarray:
    """A solo compiled run of the same program on the same graph."""
    compiled = compile_program(ALL_PROGRAMS[program], schedule or Schedule())
    argv = [program, "oracle"]
    if source is not None:
        argv.append(str(source))
    if target is not None:
        argv.append(str(target))
    result = compiled.run(argv, graph=graph)
    name = {"widest": "width", "kcore": "D"}.get(program, "dist")
    return result.globals[name]


class TestQuerySpec:
    def test_unknown_program_rejected(self):
        with pytest.raises(GraphError):
            spec(program="pagerank")

    def test_extern_programs_not_servable(self):
        for program in ("astar", "setcover"):
            with pytest.raises(GraphError):
                spec(program=program)

    def test_source_required_except_kcore(self):
        with pytest.raises(GraphError):
            spec(program="sssp", source=None)
        assert spec(program="kcore", source=None).source is None

    def test_kcore_refuses_source(self):
        with pytest.raises(GraphError):
            spec(program="kcore", source=3)

    def test_ppsp_requires_target_others_refuse_it(self):
        with pytest.raises(GraphError):
            spec(program="ppsp", source=0)
        assert spec(program="ppsp", source=0, target=5).target == 5
        with pytest.raises(GraphError):
            spec(program="sssp", source=0, target=5)

    def test_unknown_schedule_knob_rejected(self):
        with pytest.raises(GraphError):
            spec(schedule={"sanitize": True})

    def test_schedule_text_form(self):
        parsed = spec(schedule="priority_update=lazy, delta=4")
        assert parsed.schedule.priority_update == "lazy"
        assert parsed.schedule.delta == 4

    def test_schedule_key_is_canonical(self):
        a = spec(schedule={"delta": 4, "priority_update": "lazy"})
        b = spec(schedule={"priority_update": "lazy", "delta": "4"})
        assert a.schedule_key == b.schedule_key

    def test_non_integer_source_rejected(self):
        with pytest.raises(GraphError):
            spec(source="zero")


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        entry = CacheEntry(vectors={})
        cache.put("a", entry)
        cache.put("b", entry)
        assert cache.get("a") is entry  # refresh "a"
        cache.put("c", entry)  # evicts "b", the least recently used
        assert cache.peek("b") is None
        assert cache.peek("a") is entry
        assert cache.peek("c") is entry
        assert cache.evictions == 1

    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=2)
        assert cache.get("x") is None
        cache.put("x", CacheEntry(vectors={}))
        assert cache.get("x") is not None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_clear_counts_invalidations(self):
        cache = ResultCache(capacity=4)
        cache.put("x", CacheEntry(vectors={}))
        cache.put("y", CacheEntry(vectors={}))
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2


class TestEngineQueries:
    def test_out_of_range_source_rejected(self):
        engine = ServeEngine(make_graph())
        with pytest.raises(GraphError):
            asyncio.run(engine.query(spec(source=10**6)))
        engine.close()

    def test_repeat_query_served_from_cache(self):
        engine = ServeEngine(make_graph())

        async def scenario():
            first, how_first = await engine.query(spec())
            second, how_second = await engine.query(spec())
            return first, how_first, second, how_second

        first, how_first, second, how_second = asyncio.run(scenario())
        assert how_first == "computed"
        assert how_second == "cache"
        assert second is first  # the very same entry, not a recompute
        engine.close()

    def test_results_bit_match_solo_oracle(self):
        graph = make_graph()
        engine = ServeEngine(graph)

        async def scenario():
            out = {}
            out["sssp"], _ = await engine.query(spec("sssp", source=3))
            out["widest"], _ = await engine.query(spec("widest", source=3))
            out["kcore"], _ = await engine.query(spec("kcore", source=None))
            out["ppsp"], _ = await engine.query(
                spec("ppsp", source=3, target=7)
            )
            return out

        results = asyncio.run(scenario())
        oracle_graph = make_graph()
        assert np.array_equal(
            results["sssp"].vectors["dist"],
            oracle_vector("sssp", oracle_graph, source=3),
        )
        assert np.array_equal(
            results["widest"].vectors["width"],
            oracle_vector("widest", oracle_graph, source=3),
        )
        assert np.array_equal(
            results["kcore"].vectors["D"], oracle_vector("kcore", oracle_graph)
        )
        assert np.array_equal(
            results["ppsp"].vectors["dist"],
            oracle_vector("ppsp", oracle_graph, source=3, target=7),
        )
        engine.close()

    def test_identical_inflight_queries_coalesce(self):
        engine = ServeEngine(make_graph())
        gate = threading.Event()
        computes = []
        original = engine._compute

        def slow_compute(query_spec):
            computes.append(query_spec)
            gate.wait(timeout=30)
            return original(query_spec)

        engine._compute = slow_compute

        async def scenario():
            tasks = [
                asyncio.create_task(engine.query(spec(source=5)))
                for _ in range(4)
            ]
            while not computes:  # first task reached the executor
                await asyncio.sleep(0.005)
            gate.set()
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert len(computes) == 1  # one traversal total
        hows = sorted(how for _, how in results)
        assert hows.count("computed") == 1
        assert set(hows) <= {"computed", "coalesced", "cache"}
        entries = {id(entry) for entry, _ in results}
        assert len(entries) == 1
        engine.close()


class TestAdmission:
    def test_overflow_rejected_accepted_never_dropped(self):
        engine = ServeEngine(make_graph(), max_pending=2)
        gate = threading.Event()
        original = engine._compute

        def slow_compute(query_spec):
            gate.wait(timeout=30)
            return original(query_spec)

        engine._compute = slow_compute

        async def scenario():
            # Three *distinct* queries: two fill the admission budget, the
            # third must be rejected without disturbing the first two.
            first = asyncio.create_task(engine.query(spec(source=1)))
            second = asyncio.create_task(engine.query(spec(source=2)))
            while engine._pending < 2:
                await asyncio.sleep(0.005)
            with pytest.raises(Backpressure) as excinfo:
                await engine.query(spec(source=3))
            assert excinfo.value.retry_after >= 1
            gate.set()
            return await asyncio.gather(first, second)

        results = asyncio.run(scenario())
        assert [how for _, how in results] == ["computed", "computed"]
        assert engine._pending == 0  # all slots returned
        engine.close()

    def test_cache_hits_bypass_admission(self):
        engine = ServeEngine(make_graph(), max_pending=1)

        async def scenario():
            await engine.query(spec(source=1))  # populate
            engine._pending = engine.max_pending  # saturate admission
            try:
                _, how = await engine.query(spec(source=1))
            finally:
                engine._pending = 0
            return how

        assert asyncio.run(scenario()) == "cache"
        engine.close()


class TestMutation:
    MUTATIONS = "add 0 9 2\nupdate 0 9 1\nflush\nremove 0 9"

    def test_epoch_bump_invalidates_and_repopulates(self):
        engine = ServeEngine(make_graph())

        async def scenario():
            await engine.query(spec(source=0))  # creates a session
            await engine.query(spec("ppsp", source=0, target=7))  # compiled
            summary = await engine.mutate("add 0 9 2")
            _, how = await engine.query(spec(source=0))
            return summary, how

        summary, how = asyncio.run(scenario())
        assert summary["epoch"] == 1
        assert summary["invalidated"] == 2
        assert summary["resumed_sessions"] == 1
        # The resumed session repopulated its entry at the new epoch, so
        # the first post-mutation query is already a hit.
        assert how == "cache"
        engine.close()

    def test_post_mutation_values_match_post_mutation_oracle(self):
        engine = ServeEngine(make_graph())

        async def scenario():
            before, _ = await engine.query(spec(source=0))
            await engine.mutate(self.MUTATIONS)
            after, _ = await engine.query(spec(source=0))
            kcore_after, _ = await engine.query(spec("kcore", source=None))
            return before, after, kcore_after

        before, after, kcore_after = asyncio.run(scenario())

        from repro.graph.mutations import apply_mutations, parse_mutation_script

        oracle_graph = make_graph()
        for batch in parse_mutation_script(self.MUTATIONS):
            apply_mutations(oracle_graph, batch)
        assert np.array_equal(
            after.vectors["dist"], oracle_vector("sssp", oracle_graph, source=0)
        )
        assert np.array_equal(
            kcore_after.vectors["D"], oracle_vector("kcore", oracle_graph)
        )
        # And the pre-mutation entry matched the pre-mutation graph.
        assert np.array_equal(
            before.vectors["dist"], oracle_vector("sssp", make_graph(), source=0)
        )
        engine.close()

    def test_empty_script_rejected(self):
        engine = ServeEngine(make_graph())
        with pytest.raises(GraphError):
            asyncio.run(engine.mutate("# nothing here\n"))
        engine.close()

    def test_mutation_waits_for_inflight_reader(self):
        engine = ServeEngine(make_graph())
        gate = threading.Event()
        original = engine._compute

        def slow_compute(query_spec):
            gate.wait(timeout=30)
            return original(query_spec)

        engine._compute = slow_compute
        order: list[str] = []

        async def scenario():
            query_task = asyncio.create_task(engine.query(spec(source=4)))
            while engine._pending < 1:
                await asyncio.sleep(0.005)

            async def mutate():
                await engine.mutate("add 0 9 2")
                order.append("mutated")

            mutate_task = asyncio.create_task(mutate())
            await asyncio.sleep(0.05)
            assert order == []  # writer blocked behind the active reader
            gate.set()
            entry, _ = await query_task
            await mutate_task
            return entry, order

        entry, order = asyncio.run(scenario())
        assert order == ["mutated"]
        # The admitted query completed against the pre-mutation graph (its
        # read lock held off the writer) — it was never dropped.
        assert np.array_equal(
            entry.vectors["dist"], oracle_vector("sssp", make_graph(), source=4)
        )
        engine.close()
