"""The always-on metrics registry: declarations, shards, determinism,
exports, and the overhead budget.

Contracts pinned here:

* every metric name must be declared in ``repro.obs.events.METRICS``
  (undeclared names raise — the typo guard);
* per-thread shards merge with commutative operations, so the merged
  registry state is independent of thread scheduling;
* ``deterministic_snapshot`` excludes wall-clock metrics and is bit-stable
  across identical runs;
* Prometheus text exposition is well-formed (cumulative buckets, _total
  counters);
* metrics-on costs at most a few percent of wall time on the benchmark
  kernel workload (the overhead budget the subsystem's "always on" claim
  rests on).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import Schedule, compile_program
from repro.graph.generators import rmat
from repro.lang.programs import ALL_PROGRAMS
from repro.obs import events, metrics


@pytest.fixture(autouse=True)
def fresh_registry():
    """Every test sees an empty (but still global) registry, metrics on."""
    metrics.reset_metrics()
    metrics.enable()
    yield
    metrics.reset_metrics()
    metrics.enable()


def run_sssp(graph, **overrides):
    defaults = dict(priority_update="lazy", delta=3)
    defaults.update(overrides)
    schedule = Schedule(**defaults)
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    source = int(np.argmax(graph.out_degrees()))
    return program.run(["sssp", "-", str(source)], graph=graph)


# ----------------------------------------------------------------------
# Declarations (the metric half of the name registry)
# ----------------------------------------------------------------------
class TestDeclarations:
    def test_undeclared_name_refused(self):
        with pytest.raises(ValueError, match="not declared"):
            metrics.counter("bucket.definitely_a_typo")

    def test_kind_mismatch_refused(self):
        # bucket.dequeues is declared as a counter.
        with pytest.raises(ValueError, match="declared as a counter"):
            metrics.histogram("bucket.dequeues")

    def test_every_declaration_is_well_formed(self):
        for name, spec in events.METRICS.items():
            assert spec["kind"] in events.METRIC_KINDS, name
            assert spec["cat"] in events.CATEGORIES, name

    def test_every_declared_metric_constructs(self):
        for name, spec in events.METRICS.items():
            factory = getattr(metrics, spec["kind"])
            metric = factory(name)
            assert metric.name == name
            assert metric.cat == spec["cat"]


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_sums_and_resets(self):
        c = metrics.counter("runs.completed")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        c.reset()
        assert c.value() == 0

    def test_gauge_last_write_wins(self):
        g = metrics.gauge("bucket.delta")
        assert g.value() is None
        g.set(3)
        g.set(17)
        assert g.value() == 17

    def test_histogram_log2_buckets(self):
        h = metrics.histogram("bucket.frontier_size")
        for v, bucket in [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8)]:
            h.reset()
            h.observe(v)
            data = h.value()
            assert data["buckets"][bucket] == 1, (v, bucket)
            assert data["count"] == 1
            assert data["sum"] == v

    def test_histogram_clamps_extremes(self):
        h = metrics.histogram("bucket.frontier_size")
        h.observe(-5)  # negative -> bucket 0
        h.observe(1 << 200)  # absurd -> last bucket
        data = h.value()
        assert data["buckets"][0] == 1
        assert data["buckets"][metrics.HISTOGRAM_BUCKETS - 1] == 1
        assert data["max"] == 1 << 200

    def test_disabled_hooks_record_nothing(self):
        c = metrics.counter("runs.completed")
        h = metrics.histogram("bucket.frontier_size")
        metrics.disable()
        c.inc()
        h.observe(9)
        metrics.enable()
        assert c.value() == 0
        assert h.value()["count"] == 0


# ----------------------------------------------------------------------
# Shard merging (the determinism mechanism)
# ----------------------------------------------------------------------
class TestShardMerge:
    def test_concurrent_increments_merge_exactly(self):
        c = metrics.counter("parallel.rounds")
        h = metrics.histogram("parallel.chunk_size")
        per_thread, threads = 500, 6

        def work():
            for i in range(per_thread):
                c.inc()
                h.observe(i % 37)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        metrics.merge_shards()
        assert c.value() == per_thread * threads
        data = h.value()
        assert data["count"] == per_thread * threads
        assert data["sum"] == threads * sum(i % 37 for i in range(per_thread))

    def test_merged_state_is_single_sharded(self):
        c = metrics.counter("parallel.rounds")
        done = threading.Event()

        def work():
            c.inc(3)
            done.set()

        t = threading.Thread(target=work)
        t.start()
        t.join()
        assert done.is_set()
        c.inc(2)
        assert len(c._shards) == 2  # two thread shards before the barrier
        c.merge()
        assert list(c._shards) == [None]
        assert c.value() == 5

    def test_merge_order_independent(self):
        """Sharded values merge commutatively: any interleaving of inc and
        merge yields the same final value."""
        a = metrics.counter("parallel.shard_merges")
        a.inc(1)
        a.merge()
        a.inc(2)
        a.merge()
        first = a.value()
        a.reset()
        a.inc(2)
        a.inc(1)
        a.merge()
        assert a.value() == first == 3


# ----------------------------------------------------------------------
# Run-level determinism
# ----------------------------------------------------------------------
class TestRunDeterminism:
    def test_identical_runs_identical_deterministic_snapshot(self):
        graph = rmat(9, 8, seed=5, weights=(1, 4))
        metrics.reset_metrics()
        run_sssp(graph)
        first = metrics.deterministic_snapshot()
        metrics.reset_metrics()
        run_sssp(graph)
        second = metrics.deterministic_snapshot()
        assert first == second
        assert first  # non-trivial: bucket/apply/runs counters present

    def test_parallel_run_matches_serial_deterministic_snapshot(self):
        """The barrier-point shard merge makes the registry's deterministic
        subset scheduling-independent — serial and parallel execution of
        the same program agree bit for bit."""
        graph = rmat(9, 8, seed=5, weights=(1, 4))
        metrics.reset_metrics()
        run_sssp(graph, priority_update="eager_with_fusion", num_threads=4)
        serial = metrics.deterministic_snapshot()
        metrics.reset_metrics()
        run_sssp(
            graph,
            priority_update="eager_with_fusion",
            num_threads=4,
            execution="parallel",
        )
        parallel = metrics.deterministic_snapshot()
        # The parallel engine adds its own (deterministic) round counters;
        # compare the keys both runs share.
        for key in set(serial) & set(parallel):
            if key.startswith("parallel."):
                continue
            assert serial[key] == parallel[key], key

    def test_wallclock_metrics_quarantined(self):
        for name, spec in events.METRICS.items():
            if spec.get("wallclock"):
                factory = getattr(metrics, spec["kind"])
                metric = factory(name)
                if spec["kind"] == "histogram":
                    metric.observe(123)
                elif spec["kind"] == "counter":
                    metric.inc()
                else:
                    metric.set(1.0)
                assert name in metrics.snapshot()
                assert name not in metrics.deterministic_snapshot()

    def test_deterministic_snapshot_json_round_trips(self):
        graph = rmat(8, 8, seed=1, weights=(1, 4))
        metrics.reset_metrics()
        run_sssp(graph)
        snap = metrics.deterministic_snapshot()
        assert json.loads(json.dumps(snap)) == snap


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_counter_and_histogram_lines(self):
        metrics.counter("runs.completed").inc(2)
        h = metrics.histogram("bucket.frontier_size")
        h.observe(1)
        h.observe(5)
        h.observe(200)
        text = metrics.prometheus_text()
        assert "# TYPE repro_runs_completed_total counter" in text
        assert "repro_runs_completed_total 2" in text
        # Cumulative buckets: le="1" holds 1, le="7" holds 2, +Inf holds 3.
        assert 'repro_bucket_frontier_size_bucket{le="1"} 1' in text
        assert 'repro_bucket_frontier_size_bucket{le="7"} 2' in text
        assert 'repro_bucket_frontier_size_bucket{le="+Inf"} 3' in text
        assert "repro_bucket_frontier_size_sum 206" in text
        assert "repro_bucket_frontier_size_count 3" in text

    def test_empty_registry_empty_text(self):
        assert metrics.prometheus_text() == ""

    def test_names_are_prometheus_safe(self):
        metrics.gauge("bucket.delta").set(4)
        text = metrics.prometheus_text()
        assert "repro_bucket_delta 4" in text
        assert "." not in text.split()[2]  # metric token has no dots

    def test_every_series_carries_a_type_line(self):
        metrics.counter("serve.requests").inc()
        metrics.gauge("serve.queue_depth").set(3)
        metrics.histogram("serve.latency_us").observe(120)
        text = metrics.prometheus_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_latency_us histogram" in text
        # Every exposed family is preceded by its TYPE declaration.
        families = {
            line.split()[0].rsplit("_bucket", 1)[0].rsplit("_sum", 1)[0]
            .rsplit("_count", 1)[0].split("{")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        declared = {
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        assert families <= declared

    def test_escape_label_value(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('pla"in') == 'pla\\"in'
        assert escape_label_value("back\\slash") == "back\\\\slash"
        assert escape_label_value("new\nline") == "new\\nline"
        assert escape_label_value(7) == "7"

    def test_histogram_le_labels_are_escaped(self):
        # The +Inf bound goes through the same escaping path as every
        # other label value; nothing in the output may carry a raw quote
        # or newline inside a label.
        metrics.histogram("serve.latency_us").observe(1)
        text = metrics.prometheus_text()
        for line in text.splitlines():
            if "{" in line:
                label_blob = line[line.index("{") + 1 : line.rindex("}")]
                assert "\n" not in label_blob
                assert line.count('"') % 2 == 0


# ----------------------------------------------------------------------
# Overhead budget
# ----------------------------------------------------------------------
class TestOverheadBudget:
    def test_metrics_overhead_within_budget(self):
        """Metrics-on must cost <= 3% wall time vs metrics-off on the
        benchmark kernel workload.

        Hook sites fire per round / per apply call (never per edge), so
        the true overhead is far below the budget; min-of-N timing with
        three attempts keeps container scheduling noise from flaking the
        assertion.
        """
        graph = rmat(9, 8, seed=5, weights=(1, 4))
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy", delta=3)
        )
        source = int(np.argmax(graph.out_degrees()))

        def timed_run() -> float:
            started = time.perf_counter()
            program.run(["sssp", "-", str(source)], graph=graph)
            return time.perf_counter() - started

        def best_of(n: int) -> float:
            return min(timed_run() for _ in range(n))

        budget = 1.03
        for attempt in range(3):
            repeats = 5 * (attempt + 1)
            metrics.disable()
            try:
                off = best_of(repeats)
            finally:
                metrics.enable()
            on = best_of(repeats)
            if on <= off * budget:
                return
        pytest.fail(
            f"metrics overhead exceeded the {budget - 1:.0%} budget: "
            f"on={on:.6f}s off={off:.6f}s ({on / off - 1:+.1%})"
        )
