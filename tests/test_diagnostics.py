"""Tests for the midend diagnostics engine (races, validator, lint).

Covers:

- the race/atomicity analysis' per-site classification under push/pull
  schedules, including the benign-race idioms (guarded monotonic
  test-and-set, idempotent constant store) and CAS seeding from the
  preserved old-value argument,
- every stable diagnostic code (``P001``/``T001``/``V001``-``V003``/
  ``S001``-``S003``/``R001``-``R003``) with its severity and span,
- the negative paths of the constant-sum analysis,
- the race-driven atomics in generated C++ (no unconditional atomics),
- the Python backend's runtime assertion of the classification, and
- the ``repro lint`` CLI (including ``--werror``).
"""

import os
import shutil
import subprocess

import numpy as np
import pytest

from repro.algorithms import dijkstra_reference
from repro.backend import compile_program
from repro.cli import main
from repro.errors import GraphItError, IRValidationError
from repro.graph import from_edges, rmat, save_edge_list
from repro.lang import ALL_PROGRAMS, parse
from repro.lang import ast_nodes as ast
from repro.lang.span import Span
from repro.midend import Schedule, SchedulingProgram
from repro.midend.analysis import (
    DIAGNOSTIC_CODES,
    RaceClass,
    Severity,
    analyze_constant_sum,
    analyze_races,
    check_schedule_compat,
    lint_program,
    render_diagnostic,
    validate_ir,
    validate_ir_or_raise,
)
from repro.midend.transforms import plan_program

RACY_SSSP = ALL_PROGRAMS["sssp"].replace(
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
    "    dist[dst] = new_dist;\n"
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
)
assert RACY_SSSP != ALL_PROGRAMS["sssp"]


def _udf(name, source):
    return parse(source).function(name)


def _race_report(source, udf_name, schedule, queue_names={"pq"}):
    return analyze_races(
        _udf(udf_name, source), set(queue_names), schedule
    )


# ======================================================================
# Spans
# ======================================================================
class TestSpans:
    def test_parse_error_carries_location(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as excinfo:
            parse("func main()\n    var x int = 3;\nend\n", "broken.gt")
        assert excinfo.value.span is not None
        assert excinfo.value.span.file == "broken.gt"
        assert excinfo.value.span.line == 2

    def test_ast_nodes_carry_columns(self):
        program = parse(ALL_PROGRAMS["sssp"], "sssp.gt")
        udf = program.function("updateEdge")
        assert udf.span.line > 0
        assert program.source_file == "sssp.gt"
        for node in ast.walk(udf):
            assert node.line > 0

    def test_span_str(self):
        assert str(Span(line=3, column=7, file="a.gt")) == "a.gt:3:7"
        assert str(Span()) == "<unknown location>"

    def test_span_merge(self):
        merged = Span.merge(Span(line=2, column=5), Span(line=4, column=1))
        assert (merged.line, merged.column) == (2, 5)
        assert (merged.end_line, merged.end_column) >= (4, 1)


# ======================================================================
# Race/atomicity analysis (the tentpole)
# ======================================================================
class TestRaceAnalysis:
    def test_sssp_push_update_needs_cas_with_seed(self):
        report = _race_report(
            ALL_PROGRAMS["sssp"], "updateEdge", Schedule(priority_update="lazy")
        )
        sites = [s for s in report.sites if s.is_priority_update]
        assert len(sites) == 1
        site = sites[0]
        assert site.race_class is RaceClass.NEEDS_CAS
        assert site.cas_seed is not None  # seeded from dist[dst]
        assert report.needs_atomics
        assert not report.needs_deduplication

    def test_sssp_pull_update_is_thread_owned(self):
        report = _race_report(
            ALL_PROGRAMS["sssp"],
            "updateEdge",
            Schedule(priority_update="lazy", direction="DensePull"),
        )
        sites = [s for s in report.sites if s.is_priority_update]
        assert sites[0].race_class is RaceClass.BENIGN
        assert not report.needs_atomics

    def test_kcore_sum_needs_dedup(self):
        report = _race_report(
            ALL_PROGRAMS["kcore"], "apply_f", Schedule(priority_update="lazy")
        )
        sites = [s for s in report.sites if s.is_priority_update]
        assert sites[0].race_class is RaceClass.NEEDS_DEDUP
        assert report.needs_deduplication

    def test_kcore_pull_sum_is_benign(self):
        report = _race_report(
            ALL_PROGRAMS["kcore"],
            "apply_f",
            Schedule(priority_update="lazy", direction="DensePull"),
        )
        sites = [s for s in report.sites if s.is_priority_update]
        assert sites[0].race_class is RaceClass.BENIGN

    def test_astar_guarded_monotonic_store_is_benign(self):
        report = _race_report(ALL_PROGRAMS["astar"], "updateEdge", Schedule())
        stores = [s for s in report.sites if s.target == "dist[dst]"]
        assert len(stores) == 1
        assert stores[0].race_class is RaceClass.BENIGN
        assert "benign race" in stores[0].reason

    def test_bellman_ford_constant_store_is_benign(self):
        report = analyze_races(
            _udf("relax", ALL_PROGRAMS["bellman_ford"]), set(), Schedule()
        )
        scalar = [s for s in report.sites if s.target == "changed"]
        assert len(scalar) == 1
        assert scalar[0].race_class is RaceClass.BENIGN

    def test_unguarded_cross_thread_store_is_racy(self):
        report = _race_report(RACY_SSSP, "updateEdge", Schedule())
        racy = report.racy_sites
        assert len(racy) == 1
        assert racy[0].target == "dist[dst]"
        assert racy[0].span.line > 0

    def test_summary_is_json_shaped(self):
        report = _race_report(ALL_PROGRAMS["sssp"], "updateEdge", Schedule())
        summary = report.summary()
        assert summary and set(summary[0]) == {"target", "class", "line", "reason"}

    def test_plan_carries_race_report(self):
        plan = plan_program(parse(ALL_PROGRAMS["sssp"]), Schedule())
        assert plan.races is not None
        assert plan.races.udf_name == "updateEdge"
        assert plan.needs_atomics


# ======================================================================
# Constant-sum analysis: negative paths (Section 5.1)
# ======================================================================
class TestConstantSumNegatives:
    def _info(self, source):
        return analyze_constant_sum(_udf("apply_f", source), {"pq"})

    def test_kcore_baseline_qualifies(self):
        assert self._info(ALL_PROGRAMS["kcore"]) is not None

    def test_non_constant_difference_rejected(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "pq.updatePrioritySum(dst, 0 - k, k);",
        )
        assert self._info(source) is None

    def test_threshold_not_current_priority_rejected(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "pq.updatePrioritySum(dst, -1, 7);",
        )
        assert self._info(source) is None

    def test_missing_threshold_rejected(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "pq.updatePrioritySum(dst, -1);",
        )
        assert self._info(source) is None

    def test_vertex_not_a_parameter_rejected(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "var other : int = dst;\n    pq.updatePrioritySum(other, -1, k);",
        )
        assert self._info(source) is None

    def test_two_updates_rejected(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "pq.updatePrioritySum(dst, -1, k);\n"
            "    pq.updatePrioritySum(src, -1, k);",
        )
        assert self._info(source) is None

    def test_histogram_schedule_rejects_nonqualifying_udf(self):
        from repro.errors import CompileError

        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "pq.updatePrioritySum(dst, -1, 7);",
        )
        with pytest.raises(CompileError):
            plan_program(
                parse(source), Schedule(priority_update="lazy_constant_sum")
            )


# ======================================================================
# Diagnostic codes: each code asserts code + span + severity
# ======================================================================
class TestDiagnosticCodes:
    def test_registry_is_stable(self):
        for code in ("P001", "T001", "V001", "V002", "V003",
                     "S001", "S002", "S003", "R001", "R002", "R003"):
            assert code in DIAGNOSTIC_CODES

    def test_p001_syntax_error(self):
        diags = lint_program(
            "func main()\n    var x int = 3;\nend\n", filename="bad.gt"
        )
        assert [d.code for d in diags] == ["P001"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].span.line == 2
        assert diags[0].span.file == "bad.gt"

    def test_t001_type_error(self):
        source = ALL_PROGRAMS["sssp"].replace(
            "var new_dist : int = dist[src] + weight;",
            'var new_dist : int = "oops";',
        )
        diags = lint_program(source, filename="bad.gt")
        assert [d.code for d in diags] == ["T001"]
        assert diags[0].severity is Severity.ERROR

    def test_v001_unresolved_callee(self):
        program = parse(
            "func main()\n    frobnicate();\nend\n", "v001.gt"
        )
        diags = validate_ir(program, "typed")
        assert [d.code for d in diags] == ["V001"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].span.line == 2

    def test_v002_missing_main(self):
        program = parse("func helper()\nend\n")
        diags = validate_ir(program, "typed")
        assert "V002" in [d.code for d in diags]

    def test_v003_histogram_without_transformed_udf(self):
        program = parse(ALL_PROGRAMS["kcore"])
        diags = validate_ir(
            program,
            "lowered",
            schedule=Schedule(priority_update="lazy_constant_sum"),
            transformed_udf=None,
        )
        assert "V003" in [d.code for d in diags]

    def test_validate_ir_or_raise_is_compile_error(self):
        from repro.errors import CompileError

        program = parse("func helper()\nend\n")
        with pytest.raises(IRValidationError) as excinfo:
            validate_ir_or_raise(program, "typed")
        assert isinstance(excinfo.value, CompileError)
        assert "V002" in str(excinfo.value)

    def test_s001_misspelled_label_api(self):
        scheduling = SchedulingProgram().config_apply_priority_update(
            "s2", "lazy"
        )
        diags = lint_program(ALL_PROGRAMS["sssp"], schedule=scheduling)
        assert [d.code for d in diags] == ["S001"]
        assert diags[0].severity is Severity.ERROR
        assert "s2" in diags[0].message

    def test_s001_misspelled_label_inline_is_located(self):
        source = ALL_PROGRAMS["sssp"] + (
            '\nschedule:\nprogram->configApplyPriorityUpdate("s2", "lazy");\n'
        )
        diags = lint_program(source, filename="typo.gt")
        s001 = [d for d in diags if d.code == "S001"]
        assert len(s001) == 1
        assert s001[0].span.line > 0
        assert s001[0].span.file == "typo.gt"
        assert "did you mean 's1'" in s001[0].message

    def test_s002_dead_knob_warning(self):
        scheduling = (
            SchedulingProgram()
            .config_apply_priority_update("s1", "eager_no_fusion")
            .config_num_buckets("s1", 64)
        )
        diags = lint_program(ALL_PROGRAMS["sssp"], schedule=scheduling)
        assert [d.code for d in diags] == ["S002"]
        assert diags[0].severity is Severity.WARNING
        assert "num_buckets" in diags[0].message

    def test_s002_fusion_threshold_dead_under_lazy(self):
        scheduling = (
            SchedulingProgram()
            .config_apply_priority_update("s1", "lazy")
            .config_bucket_fusion_threshold("s1", 512)
        )
        diags = check_schedule_compat(
            parse(ALL_PROGRAMS["sssp"]), scheduling
        )
        assert [d.code for d in diags] == ["S002"]

    def test_s002_chunk_size_dead_under_static(self):
        scheduling = (
            SchedulingProgram()
            .config_apply_parallelization("s1", "static-vertex-parallel")
            .config_chunk_size("s1", 32)
        )
        diags = check_schedule_compat(
            parse(ALL_PROGRAMS["sssp"]), scheduling
        )
        assert [d.code for d in diags] == ["S002"]

    def test_s002_parallel_execution_dead_at_one_thread(self):
        """execution=parallel can never engage a single-worker engine."""
        scheduling = (
            SchedulingProgram()
            .config_execution("s1", "parallel")
            .config_num_threads("s1", 1)
        )
        diags = check_schedule_compat(parse(ALL_PROGRAMS["sssp"]), scheduling)
        assert [d.code for d in diags] == ["S002", "S002"]
        messages = " | ".join(d.message for d in diags)
        assert "execution" in messages
        assert "num_threads" in messages
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_s002_parallel_execution_live_with_workers(self):
        """The same knobs are NOT dead once real workers exist."""
        scheduling = (
            SchedulingProgram()
            .config_execution("s1", "parallel")
            .config_num_threads("s1", 4)
        )
        diags = check_schedule_compat(parse(ALL_PROGRAMS["sssp"]), scheduling)
        assert diags == []

    def test_s002_num_threads_live_under_serial_simulation(self):
        """num_threads still drives virtual partitioning in serial mode, so
        configuring it without the parallel engine is not a dead knob."""
        scheduling = SchedulingProgram().config_num_threads("s1", 1)
        diags = check_schedule_compat(parse(ALL_PROGRAMS["sssp"]), scheduling)
        assert diags == []

    def test_s003_infeasible_inline_schedule(self):
        source = ALL_PROGRAMS["sssp"] + (
            "\nschedule:\n"
            'program->configApplyDirection("s1", "DensePull");\n'
        )  # default strategy is eager: push-only
        diags = lint_program(source, filename="bad.gt")
        assert "S003" in [d.code for d in diags]
        assert all(
            d.severity is Severity.ERROR for d in diags if d.code == "S003"
        )

    def test_r001_injected_racy_udf_exactly_one(self):
        diags = lint_program(RACY_SSSP, filename="racy.gt")
        assert len(diags) == 1
        assert diags[0].code == "R001"
        assert diags[0].severity is Severity.ERROR
        assert diags[0].span.line == 9
        assert diags[0].span.file == "racy.gt"

    def test_r002_r003_are_info_and_hidden_by_default(self):
        assert lint_program(ALL_PROGRAMS["astar"]) == []
        with_info = lint_program(ALL_PROGRAMS["astar"], include_info=True)
        assert [d.code for d in with_info] == ["R002"]
        assert with_info[0].severity is Severity.INFO
        kcore_info = lint_program(ALL_PROGRAMS["kcore"], include_info=True)
        assert [d.code for d in kcore_info] == ["R003"]

    def test_render_diagnostic_format(self):
        diags = lint_program(RACY_SSSP, filename="racy.gt")
        rendered = render_diagnostic(diags[0])
        assert rendered.startswith("racy.gt:9:")
        assert "error[R001]" in rendered


# ======================================================================
# Zero findings over the paper programs (the CI --werror gate)
# ======================================================================
class TestPaperProgramsLintClean:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_no_errors_or_warnings(self, name):
        assert lint_program(ALL_PROGRAMS[name], filename=name) == []


# ======================================================================
# SchedulingProgram consultation audit trail (the footgun satellite)
# ======================================================================
class TestScheduleConsultation:
    def test_consulted_labels_recorded(self):
        scheduling = SchedulingProgram().config_apply_priority_update(
            "s1", "lazy"
        )
        assert scheduling.consulted_labels == frozenset()
        scheduling.schedule_for("s1")
        assert scheduling.consulted_labels == frozenset({"s1"})
        assert scheduling.unconsulted_labels() == ()

    def test_unconsulted_label_is_typo_suspect(self):
        scheduling = (
            SchedulingProgram()
            .config_apply_priority_update("s2", "lazy")
        )
        plan_program(parse(ALL_PROGRAMS["sssp"]), scheduling)
        assert scheduling.unconsulted_labels() == ("s2",)

    def test_commands_for_records_issue_order(self):
        scheduling = (
            SchedulingProgram()
            .config_apply_priority_update("s1", "lazy")
            .config_apply_priority_update_delta("s1", 4)
        )
        assert scheduling.commands_for("s1") == (
            ("priority_update", "lazy"),
            ("delta", 4),
        )


# ======================================================================
# C++ backend: atomics driven by the race analysis
# ======================================================================
class TestCppAtomicsRaceDriven:
    def _cpp(self, source, schedule):
        return compile_program(source, schedule, backend="cpp").source_text

    def test_push_min_update_uses_seeded_cas(self):
        code = self._cpp(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy")
        )
        assert "atomicWriteMin(&dist[dst], __new_value, dist[dst]);" in code

    def test_pull_min_update_has_no_atomic(self):
        code = self._cpp(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update="lazy", direction="DensePull"),
        )
        assert "atomicWriteMin(&dist" not in code

    def test_push_sum_uses_atomic_clamped_add(self):
        code = self._cpp(
            ALL_PROGRAMS["kcore"], Schedule(priority_update="lazy")
        )
        assert "atomicAddClamped(&D[dst]" in code

    def test_pull_sum_uses_serial_clamped_add(self):
        code = self._cpp(
            ALL_PROGRAMS["kcore"],
            Schedule(priority_update="lazy", direction="DensePull"),
        )
        assert "atomicAddClamped(&D[dst]" not in code
        assert "addClamped(&D[dst]" in code

    def test_racy_write_is_flagged_in_generated_code(self):
        code = self._cpp(RACY_SSSP, Schedule(priority_update="lazy"))
        assert "// R001: unordered racy write" in code

    def test_unseeded_two_arg_form_uses_plain_cas(self):
        source = ALL_PROGRAMS["sssp"].replace(
            "pq.updatePriorityMin(dst, dist[dst], new_dist);",
            "pq.updatePriorityMin(dst, new_dist);",
        )
        code = self._cpp(source, Schedule(priority_update="lazy"))
        assert "atomicWriteMin(&dist[dst], __new_value);" in code


GXX = shutil.which("g++")


@pytest.mark.skipif(GXX is None, reason="g++ not available")
class TestSeededCasDifferential:
    def test_seeded_cas_matches_python_and_oracle(self, tmp_path):
        schedule = Schedule(priority_update="lazy", delta=4, num_threads=2)
        program = compile_program(
            ALL_PROGRAMS["sssp"], schedule, backend="cpp"
        )
        assert "atomicWriteMin(&dist[dst], __new_value, dist[dst]);" in (
            program.source_text
        )
        cpp = tmp_path / "sssp_seeded.cpp"
        exe = tmp_path / "sssp_seeded"
        cpp.write_text(program.source_text)
        subprocess.run(
            [GXX, "-O2", "-std=c++17", "-fopenmp", "-o", str(exe), str(cpp)],
            check=True,
            capture_output=True,
        )
        python_program = compile_program(ALL_PROGRAMS["sssp"], schedule)
        for seed in range(3):
            graph = rmat(7, 6, seed=seed)
            source = int(np.argmax(graph.out_degrees()))
            oracle = dijkstra_reference(graph, source)
            graph_file = tmp_path / "input.el"
            out_file = tmp_path / "output.txt"
            save_edge_list(graph, graph_file)
            env = dict(
                os.environ, REPRO_OUTPUT=str(out_file), OMP_NUM_THREADS="3"
            )
            subprocess.run(
                [str(exe), str(graph_file), str(source)],
                check=True,
                env=env,
            )
            vectors = {}
            for line in out_file.read_text().splitlines():
                parts = line.split()
                vectors[parts[0]] = np.array(
                    [int(x) for x in parts[1:]], dtype=np.int64
                )
            python_run = python_program.run(
                ["sssp", "-", str(source)], graph=graph
            )
            assert np.array_equal(vectors["dist"], oracle), seed
            assert np.array_equal(python_run.vector("dist"), oracle), seed


# ======================================================================
# Python backend: runtime assertion of the classification
# ======================================================================
class TestPythonRuntimeAssertion:
    def _graph(self):
        return from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 1)])

    def test_generated_module_declares_report(self):
        program = compile_program(ALL_PROGRAMS["sssp"])
        assert "ctx.declare_race_report(" in program.source_text

    def test_racy_program_refused_at_runtime(self):
        program = compile_program(RACY_SSSP)
        with pytest.raises(GraphItError, match="R001"):
            program.run(["sssp", "-", "0"], graph=self._graph())

    def test_clean_program_records_report(self):
        result = compile_program(ALL_PROGRAMS["sssp"]).run(
            ["sssp", "-", "0"], graph=self._graph()
        )
        assert len(result.context.race_reports) == 1
        report = result.context.race_reports[0]
        assert report["udf"] == "updateEdge"
        assert report["sites"][0]["class"] == "needs_cas"

    def test_stale_schedule_mismatch_rejected(self):
        from repro.backend import Context

        ctx = Context(["prog"], Schedule(direction="SparsePush"))
        with pytest.raises(GraphItError, match="recompile"):
            ctx.declare_race_report(
                udf="f",
                direction="DensePull",
                parallelization="dynamic-vertex-parallel",
                sites=[],
            )


# ======================================================================
# repro lint CLI
# ======================================================================
class TestLintCli:
    def test_clean_builtins_exit_zero(self, capsys):
        assert main(["lint", *sorted(ALL_PROGRAMS), "--werror"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_racy_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "racy.gt"
        path.write_text(RACY_SSSP)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "error[R001]" in out
        assert f"{path}:9:" in out

    def test_warning_only_needs_werror_to_fail(self, tmp_path, capsys):
        source = ALL_PROGRAMS["sssp"] + (
            "\nschedule:\n"
            'program->configApplyPriorityUpdate("s1", "eager_no_fusion")\n'
            '  ->configNumBuckets("s1", "64");\n'
        )
        path = tmp_path / "deadknob.gt"
        path.write_text(source)
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--werror"]) == 1
        out = capsys.readouterr().out
        assert "warning[S002]" in out

    def test_explicit_schedule_flags(self, capsys):
        assert main(["lint", "sssp", "--priority-update", "lazy"]) == 0

    def test_example_program_lints_clean(self):
        example = os.path.join(
            os.path.dirname(__file__), "..", "examples", "sssp_delta.gt"
        )
        assert main(["lint", example, "--werror"]) == 0
