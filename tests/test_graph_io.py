"""Unit tests for graph serialization (edge list, DIMACS, npz)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    from_edges,
    load_dimacs,
    load_edge_list,
    load_npz,
    road_grid,
    save_dimacs,
    save_edge_list,
    save_npz,
)


@pytest.fixture
def sample(tmp_path):
    graph = from_edges(4, [(0, 1, 5), (1, 2, 3), (2, 3, 1), (0, 3, 9)])
    return graph, tmp_path


def test_edge_list_roundtrip(sample):
    graph, tmp = sample
    path = tmp / "graph.el"
    save_edge_list(graph, path)
    loaded = load_edge_list(path)
    assert np.array_equal(loaded.indptr, graph.indptr)
    assert np.array_equal(loaded.indices, graph.indices)
    assert np.array_equal(loaded.weights, graph.weights)


def test_edge_list_comments_and_unweighted(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("# comment\n% other comment\n0 1\n1 2 7\n")
    graph = load_edge_list(path)
    assert graph.num_vertices == 3
    assert graph.weights.tolist() == [1, 7]


def test_edge_list_explicit_vertex_count(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0 1\n")
    graph = load_edge_list(path, num_vertices=10)
    assert graph.num_vertices == 10


def test_edge_list_malformed_rejected(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("0 1 2 3\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_dimacs_roundtrip(sample):
    graph, tmp = sample
    path = tmp / "graph.gr"
    save_dimacs(graph, path)
    loaded = load_dimacs(path)
    assert loaded.num_vertices == graph.num_vertices
    assert np.array_equal(loaded.indices, graph.indices)
    assert np.array_equal(loaded.weights, graph.weights)


def test_dimacs_with_coordinates(tmp_path):
    graph = road_grid(4, 5, seed=1)
    gr = tmp_path / "road.gr"
    co = tmp_path / "road.co"
    save_dimacs(graph, gr, coordinates_path=co)
    loaded = load_dimacs(gr, coordinates_path=co)
    assert loaded.has_coordinates
    assert np.allclose(loaded.coordinates, graph.coordinates, atol=1e-5)


def test_dimacs_missing_header_rejected(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("a 1 2 3\n")
    with pytest.raises(GraphError):
        load_dimacs(path)


def test_dimacs_unknown_record_rejected(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p sp 2 1\nx 1 2 3\n")
    with pytest.raises(GraphError):
        load_dimacs(path)


def test_dimacs_coordinates_require_graph_coords(sample):
    graph, tmp = sample
    with pytest.raises(GraphError):
        save_dimacs(graph, tmp / "g.gr", coordinates_path=tmp / "g.co")


def test_npz_roundtrip(sample):
    graph, tmp = sample
    path = tmp / "graph.npz"
    save_npz(graph, path)
    loaded = load_npz(path)
    assert np.array_equal(loaded.indptr, graph.indptr)
    assert np.array_equal(loaded.indices, graph.indices)
    assert np.array_equal(loaded.weights, graph.weights)
    assert not loaded.has_coordinates


def test_npz_roundtrip_with_coordinates(tmp_path):
    graph = road_grid(3, 4, seed=2)
    path = tmp_path / "road.npz"
    save_npz(graph, path)
    loaded = load_npz(path)
    assert np.array_equal(loaded.coordinates, graph.coordinates)
