"""End-to-end tests for the Python backend: compiled DSL programs must match
the reference oracles under every schedule, and the generated source must
show the structural decisions the schedule dictates."""

import numpy as np
import pytest

from repro.algorithms import (
    dijkstra_reference,
    greedy_setcover_reference,
    kcore_reference,
)
from repro.backend import compile_program
from repro.backend.extern_library import (
    astar_externs,
    collect_setcover_result,
    setcover_externs,
)
from repro.errors import CompileError
from repro.graph import rmat, road_grid
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule


@pytest.fixture(scope="module")
def social():
    graph = rmat(8, 10, seed=3)
    source = int(np.argmax(graph.out_degrees()))
    return graph, source, dijkstra_reference(graph, source)


@pytest.fixture(scope="module")
def road():
    graph = road_grid(12, 14, seed=4)
    return graph, dijkstra_reference(graph, 0)


@pytest.fixture(scope="module")
def symmetric():
    graph = rmat(8, 10, seed=3).symmetrized()
    return graph, kcore_reference(graph)


class TestCompiledSSSP:
    @pytest.mark.parametrize(
        "strategy", ["lazy", "eager_no_fusion", "eager_with_fusion"]
    )
    def test_matches_dijkstra(self, social, strategy):
        graph, source, reference = social
        program = compile_program(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update=strategy, delta=16, num_threads=4),
        )
        result = program.run(["sssp", "-", str(source)], graph=graph)
        assert np.array_equal(result.vector("dist"), reference)

    def test_densepull_matches(self, social):
        graph, source, reference = social
        program = compile_program(
            ALL_PROGRAMS["sssp"],
            Schedule(
                priority_update="lazy",
                delta=16,
                direction="DensePull",
                num_threads=4,
            ),
        )
        result = program.run(["sssp", "-", str(source)], graph=graph)
        assert np.array_equal(result.vector("dist"), reference)

    def test_delta_one_strict_ordering(self, social):
        graph, source, reference = social
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy", delta=1)
        )
        result = program.run(["sssp", "-", str(source)], graph=graph)
        assert np.array_equal(result.vector("dist"), reference)

    def test_stats_populated(self, social):
        graph, source, _ = social
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy", delta=16)
        )
        result = program.run(["sssp", "-", str(source)], graph=graph)
        assert result.stats.rounds > 0
        assert result.stats.relaxations > 0
        assert result.stats.buffer_appends > 0

    def test_fusion_reduces_rounds_on_road(self, road):
        graph, _ = road
        runs = {}
        for strategy in ("eager_no_fusion", "eager_with_fusion"):
            program = compile_program(
                ALL_PROGRAMS["sssp"],
                Schedule(priority_update=strategy, delta=512, num_threads=4),
            )
            runs[strategy] = program.run(["sssp", "-", "0"], graph=graph).stats
        assert runs["eager_with_fusion"].rounds < runs["eager_no_fusion"].rounds
        assert runs["eager_with_fusion"].fused_rounds > 0


class TestCompiledPPSPandAStar:
    @pytest.mark.parametrize("strategy", ["lazy", "eager_with_fusion"])
    def test_ppsp_target_distance(self, road, strategy):
        graph, reference = road
        target = graph.num_vertices - 1
        program = compile_program(
            ALL_PROGRAMS["ppsp"],
            Schedule(priority_update=strategy, delta=256, num_threads=4),
        )
        result = program.run(["ppsp", "-", "0", str(target)], graph=graph)
        assert int(result.vector("dist")[target]) == reference[target]

    def test_ppsp_early_exit_saves_rounds(self, road):
        graph, _ = road
        target = graph.num_vertices // 3  # a nearby vertex
        schedule = Schedule(priority_update="lazy", delta=256, num_threads=4)
        full = compile_program(ALL_PROGRAMS["sssp"], schedule).run(
            ["sssp", "-", "0"], graph=graph
        )
        early = compile_program(ALL_PROGRAMS["ppsp"], schedule).run(
            ["ppsp", "-", "0", str(target)], graph=graph
        )
        assert early.stats.rounds < full.stats.rounds

    @pytest.mark.parametrize("strategy", ["lazy", "eager_with_fusion"])
    def test_astar_exact(self, road, strategy):
        graph, reference = road
        target = graph.num_vertices - 1
        program = compile_program(
            ALL_PROGRAMS["astar"],
            Schedule(priority_update=strategy, delta=256, num_threads=4),
        )
        result = program.run(
            ["astar", "-", "0", str(target)],
            graph=graph,
            extern_functions=astar_externs(),
        )
        assert int(result.vector("dist")[target]) == reference[target]

    def test_astar_missing_extern_raises(self, road):
        graph, _ = road
        program = compile_program(ALL_PROGRAMS["astar"], Schedule())
        with pytest.raises(CompileError):
            program.run(["astar", "-", "0", "1"], graph=graph)


class TestCompiledKCore:
    @pytest.mark.parametrize(
        "strategy", ["lazy", "lazy_constant_sum", "eager_no_fusion"]
    )
    def test_matches_reference(self, symmetric, strategy):
        graph, reference = symmetric
        program = compile_program(
            ALL_PROGRAMS["kcore"],
            Schedule(priority_update=strategy, num_threads=4),
        )
        result = program.run(["kcore", "-"], graph=graph)
        assert np.array_equal(result.vector("D"), reference)

    def test_histogram_counts_recorded(self, symmetric):
        graph, _ = symmetric
        program = compile_program(
            ALL_PROGRAMS["kcore"], Schedule(priority_update="lazy_constant_sum")
        )
        result = program.run(["kcore", "-"], graph=graph)
        assert result.stats.histogram_updates > 0
        # The histogram path performs no per-edge atomics.
        assert result.stats.atomic_ops == 0


class TestCompiledSetCover:
    def test_full_coverage_and_quality(self, symmetric):
        graph, _ = symmetric
        program = compile_program(
            ALL_PROGRAMS["setcover"], Schedule(priority_update="lazy")
        )
        result = program.run(
            ["setcover", "-"],
            graph=graph,
            extern_functions=setcover_externs(seed=1),
        )
        cover, covered = collect_setcover_result(result)
        assert covered.all()
        greedy = greedy_setcover_reference(graph)
        assert cover.size <= 2 * greedy.size


class TestGeneratedSource:
    def test_lazy_keeps_while_loop(self):
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy")
        )
        assert "while" in program.source_text
        assert "ctx.apply_update_priority(" in program.source_text
        assert "ordered_process_eager" not in program.source_text

    def test_eager_replaces_while_loop(self):
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="eager_with_fusion")
        )
        assert "ctx.ordered_process_eager(" in program.source_text
        assert "dequeue_ready_set" not in program.source_text
        assert "fusion_threshold=1000" in program.source_text

    def test_eager_no_fusion_threshold_zero(self):
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="eager_no_fusion")
        )
        assert "fusion_threshold=0" in program.source_text

    def test_ppsp_eager_carries_stop_condition(self):
        program = compile_program(
            ALL_PROGRAMS["ppsp"], Schedule(priority_update="eager_no_fusion")
        )
        assert "stop_condition=lambda:" in program.source_text

    def test_histogram_emits_transformed_udf(self):
        program = compile_program(
            ALL_PROGRAMS["kcore"], Schedule(priority_update="lazy_constant_sum")
        )
        text = program.source_text
        assert "def apply_f_transformed(vertex, count):" in text
        assert "max((priority + (-1 * count)), k)" in text
        assert "apply_update_priority_histogram" in text

    def test_three_arg_update_drops_old_value(self):
        program = compile_program(ALL_PROGRAMS["sssp"], Schedule())
        assert "update_priority_min(dst, new_dist)" in program.source_text

    def test_run_requires_python_backend(self):
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="lazy"), backend="cpp"
        )
        with pytest.raises(CompileError):
            program.run(["sssp", "-", "0"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(CompileError):
            compile_program(ALL_PROGRAMS["sssp"], Schedule(), backend="rust")

    def test_write(self, tmp_path):
        program = compile_program(ALL_PROGRAMS["sssp"], Schedule())
        path = tmp_path / "out.py"
        program.write(path)
        assert path.read_text() == program.source_text



class TestUnorderedDSL:
    def test_bellman_ford_program(self, social):
        from repro.lang import program_source

        graph, source, reference = social
        program = compile_program(
            program_source("bellman_ford"),
            Schedule(priority_update="lazy", num_threads=3),
        )
        result = program.run(["bf", "-", str(source)], graph=graph)
        assert np.array_equal(result.vector("dist"), reference)
        # Whole-edgeset applies: relaxations are a multiple of |E|.
        assert result.stats.relaxations % graph.num_edges == 0
        assert "ctx.apply_edges(edges, relax)" in program.source_text

    def test_unordered_cpp_rejected(self):
        from repro.lang import program_source

        with pytest.raises(CompileError):
            compile_program(
                program_source("bellman_ford"),
                Schedule(priority_update="lazy"),
                backend="cpp",
            )
