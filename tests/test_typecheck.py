"""Unit tests for the DSL type checker."""

import pytest

from repro.errors import TypeCheckError
from repro.lang import ALL_PROGRAMS, parse, typecheck
from repro.lang.types import INT, EdgeSetType, PriorityQueueType

PRELUDE = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;
const pq : priority_queue{Vertex}(int);
"""


def check(source: str):
    return typecheck(parse(source))


@pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
def test_all_paper_programs_typecheck(name):
    table = check(ALL_PROGRAMS[name])
    assert "main" in table.functions


def test_symbol_table_contents():
    table = check(ALL_PROGRAMS["sssp"])
    assert isinstance(table.globals.lookup("edges"), EdgeSetType)
    assert isinstance(table.globals.lookup("pq"), PriorityQueueType)
    assert table.function_locals["updateEdge"]["new_dist"] == INT


def test_unknown_element_rejected():
    with pytest.raises(TypeCheckError):
        check("const v : vector{Vertex}(int) = 0;")


def test_element_redeclaration_rejected():
    with pytest.raises(TypeCheckError):
        check("element Vertex end\nelement Vertex end")


def test_undeclared_name_rejected():
    with pytest.raises(TypeCheckError):
        check("func main()\n var x : int = y + 1;\nend")


def test_variable_redeclaration_in_scope_rejected():
    with pytest.raises(TypeCheckError):
        check("func main()\n var x : int = 1;\n var x : int = 2;\nend")


def test_assign_type_mismatch_rejected():
    with pytest.raises(TypeCheckError):
        check('func main()\n var x : int = "hello";\nend')


def test_while_condition_must_be_bool():
    with pytest.raises(TypeCheckError):
        check("func main()\n while 3\n end\nend")


def test_arithmetic_needs_numbers():
    with pytest.raises(TypeCheckError):
        check('func main()\n var x : int = 1 + "a";\nend')


def test_comparison_type_mismatch():
    with pytest.raises(TypeCheckError):
        check('func main()\n var b : bool = 1 == "a";\nend')


def test_vector_indexed_by_vertex_or_int():
    check(
        PRELUDE
        + "func f(src : Vertex, dst : Vertex, weight : int)\n"
        + " var d : int = dist[src];\nend\nfunc main()\nend"
    )
    with pytest.raises(TypeCheckError):
        check(
            PRELUDE
            + 'func main()\n var d : int = dist["zero"];\nend'
        )


def test_scalar_not_indexable():
    with pytest.raises(TypeCheckError):
        check("func main()\n var x : int = 3;\n var y : int = x[0];\nend")


def test_pq_method_arity_checked():
    with pytest.raises(TypeCheckError):
        check(PRELUDE + "func main()\n pq.updatePriorityMin(0);\nend")


def test_pq_unknown_method_rejected():
    with pytest.raises(TypeCheckError):
        check(PRELUDE + "func main()\n pq.popMin();\nend")


def test_dequeue_returns_vertexset():
    check(
        PRELUDE
        + "func main()\n var b : vertexset{Vertex} = pq.dequeueReadySet();\nend"
    )
    with pytest.raises(TypeCheckError):
        check(PRELUDE + "func main()\n var b : int = pq.dequeueReadySet();\nend")


def test_apply_references_unknown_function():
    with pytest.raises(TypeCheckError):
        check(
            PRELUDE
            + "func main()\n"
            + " var b : vertexset{Vertex} = pq.dequeueReadySet();\n"
            + " edges.from(b).applyUpdatePriority(nosuch);\nend"
        )


def test_apply_udf_arity_checked():
    with pytest.raises(TypeCheckError):
        check(
            PRELUDE
            + "func f(x : int)\nend\n"
            + "func main()\n"
            + " var b : vertexset{Vertex} = pq.dequeueReadySet();\n"
            + " edges.from(b).applyUpdatePriority(f);\nend"
        )


def test_from_requires_vertexset():
    with pytest.raises(TypeCheckError):
        check(
            PRELUDE
            + "func f(s : Vertex, d : Vertex, w : int)\nend\n"
            + "func main()\n edges.from(3).applyUpdatePriority(f);\nend"
        )


def test_load_requires_string():
    with pytest.raises(TypeCheckError):
        check(
            "element Vertex end\nelement Edge end\n"
            "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(3);"
        )


def test_atoi_result_is_int():
    check("func main()\n var x : int = atoi(argv[2]);\nend")
    with pytest.raises(TypeCheckError):
        check("func main()\n var x : bool = atoi(argv[2]);\nend")


def test_call_to_unknown_function():
    with pytest.raises(TypeCheckError):
        check("func main()\n frobnicate();\nend")


def test_extern_calls_unchecked():
    check("extern func helper;\nfunc main()\n helper(1, 2, 3);\nend")


def test_user_function_call_arity():
    with pytest.raises(TypeCheckError):
        check("func f(x : int)\nend\nfunc main()\n f(1, 2);\nend")


def test_function_redeclaration_rejected():
    with pytest.raises(TypeCheckError):
        check("func f()\nend\nfunc f()\nend")


def test_delete_undeclared_rejected():
    with pytest.raises(TypeCheckError):
        check("func main()\n delete ghost;\nend")


def test_get_out_degrees_type():
    check(
        "element Vertex end\nelement Edge end\n"
        "const edges : edgeset{Edge}(Vertex, Vertex);\n"
        "const D : vector{Vertex}(int) = edges.getOutDegrees();"
    )


def test_int_assignable_to_float():
    check("func main()\n var x : float = 3;\nend")
    with pytest.raises(TypeCheckError):
        check("func main()\n var x : int = 3.5;\nend")
