"""Property-based fuzz for incremental recomputation (slow tier).

Hypothesis (derandomized, so CI sees the same cases every run) generates
arbitrary small multigraphs, a source, and an arbitrary interleaving of
single and batched mutations.  After every batch the resumed vector must
bit-match BOTH oracles:

- a from-scratch session over the same (overlay-carrying) graph, and
- the plain algorithm runner over a clean CSR rebuilt from the edge
  list — so a bug in the overlay read paths cannot hide by affecting the
  incremental run and its oracle identically.

The generators deliberately produce the adversarial shapes the engine
documents: self-loops, duplicate (parallel) edges, zero-weight edges and
zero-weight cycles, disconnecting deletions, and mutations that touch
edges added earlier in the same batch.  The resume profile must also stay
sane: ``incremental_vertices_touched <= |V|`` on every batch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import kcore as kcore_runner
from repro.algorithms import sssp as sssp_runner
from repro.algorithms import wbfs as wbfs_runner
from repro.algorithms import widest_path as widest_runner
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.mutations import Mutation
from repro.incremental import IncrementalSession
from repro.midend.schedule import Schedule

pytestmark = pytest.mark.slow

MAX_VERTICES = 20

# An op spec is (kind, a, b, w): kind 0 = add a -> b with weight w,
# kind 1 = remove a live edge (a indexes into the current edge list),
# kind 2 = update a live edge's weight to w.  Specs are resolved against
# the live graph at application time, so every generated sequence is
# valid by construction.
OP_SPECS = st.tuples(
    st.integers(0, 2),
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(0, 6),
)

GRAPH_SPEC = dict(
    n=st.integers(2, MAX_VERTICES),
    edges=st.lists(
        st.tuples(
            st.integers(0, MAX_VERTICES - 1),
            st.integers(0, MAX_VERTICES - 1),
            st.integers(0, 6),
        ),
        min_size=1,
        max_size=50,
    ),
    ops=st.lists(OP_SPECS, min_size=1, max_size=24),
    cuts=st.sets(st.integers(1, 23), max_size=6),
    source=st.integers(0, MAX_VERTICES - 1),
)

FUZZ_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_graph(n: int, edges, unit: bool, symmetric: bool) -> CSRGraph:
    resolved = [(src % n, dst % n, 1 if unit else weight) for src, dst, weight in edges]
    graph = from_edges(n, resolved)
    return graph.symmetrized() if symmetric else graph


def split_batches(ops, cuts):
    batches, current = [], []
    for index, op in enumerate(ops):
        if index in cuts and current:
            batches.append(current)
            current = []
        current.append(op)
    if current:
        batches.append(current)
    return batches


def resolve_batch(
    graph: CSRGraph, specs, unit: bool, symmetric: bool
) -> list[Mutation]:
    """Map op specs onto the live graph, skipping impossible ops.

    ``dead`` tracks pairs removed earlier in the batch (the engine applies
    sequentially, so a second removal of the same pair would raise).
    """
    sources, dests, _ = graph.edge_list()
    live = sources.size
    n = graph.num_vertices
    dead: set[tuple[int, int]] = set()
    batch: list[Mutation] = []
    for kind, a, b, weight in specs:
        weight = 1 if unit else weight
        if kind == 0:
            batch.append(Mutation("add", a % n, b % n, weight))
            continue
        if live == 0:
            continue
        src, dst = int(sources[a % live]), int(dests[a % live])
        if (src, dst) in dead or (symmetric and (dst, src) in dead):
            continue
        if kind == 1:
            dead.add((src, dst))
            batch.append(Mutation("remove", src, dst))
        else:
            batch.append(Mutation("update", src, dst, weight))
    return batch


def check_fuzz_case(
    algorithm: str,
    schedule: Schedule,
    n: int,
    edges,
    ops,
    cuts,
    source: int,
    relaxed_ordering: bool = False,
) -> None:
    unit = algorithm == "kcore"
    symmetric = algorithm == "kcore"
    graph = build_graph(n, edges, unit=unit, symmetric=symmetric)
    source = source % n
    session = IncrementalSession(
        graph, algorithm, source=source, schedule=schedule,
        relaxed_ordering=relaxed_ordering,
    )
    session.run()
    for specs in split_batches(ops, cuts):
        batch = resolve_batch(session.graph, specs, unit=unit, symmetric=symmetric)
        if not batch:
            continue
        result = session.apply(batch)
        assert 0 <= result.vertices_touched <= n
        # k-core resumes once per mutation (each with its own worklist), so
        # its seed count is bounded per mutation, not per batch.
        assert 0 <= result.seeds <= n * len(batch)
        # Oracle 1: a fresh session over the same mutated graph.
        oracle = IncrementalSession(
            session.graph, algorithm, source=source, schedule=schedule,
            relaxed_ordering=relaxed_ordering,
        )
        expected = oracle.run().values
        assert np.array_equal(result.values, expected), (
            f"{algorithm}: resumed vector diverged from the fresh session at "
            f"{np.flatnonzero(result.values != expected)[:10]}"
        )
        # Oracle 2: the plain runner over a rebuilt clean CSR.
        srcs, dsts, weights = session.graph.edge_list()
        clean = from_edges(n, zip(srcs.tolist(), dsts.tolist(), weights.tolist()))
        if algorithm == "sssp":
            expected = sssp_runner(
                clean, source, schedule, relaxed_ordering=relaxed_ordering
            ).distances
        elif algorithm == "wbfs":
            expected = wbfs_runner(clean, source, schedule).distances
        elif algorithm == "widest_path":
            expected = widest_runner(clean, source, schedule).distances
        else:
            expected = kcore_runner(clean, schedule).coreness
        assert np.array_equal(result.values, expected), (
            f"{algorithm}: resumed vector diverged from the plain runner at "
            f"{np.flatnonzero(result.values != expected)[:10]}"
        )


@settings(max_examples=40, **FUZZ_SETTINGS)
@given(strategy=st.sampled_from(["lazy", "eager_no_fusion"]), **GRAPH_SPEC)
def test_fuzz_sssp(strategy, n, edges, ops, cuts, source) -> None:
    check_fuzz_case(
        "sssp",
        Schedule(priority_update=strategy, delta=2),
        n, edges, ops, cuts, source,
    )


@settings(max_examples=15, **FUZZ_SETTINGS)
@given(**GRAPH_SPEC)
def test_fuzz_sssp_relaxed(n, edges, ops, cuts, source) -> None:
    check_fuzz_case(
        "sssp",
        Schedule(
            priority_update="eager_with_fusion", delta=2, bucket_fusion_threshold=16
        ),
        n, edges, ops, cuts, source,
        relaxed_ordering=True,
    )


@settings(max_examples=20, **FUZZ_SETTINGS)
@given(**GRAPH_SPEC)
def test_fuzz_widest_path(n, edges, ops, cuts, source) -> None:
    check_fuzz_case(
        "widest_path",
        Schedule(priority_update="lazy", delta=4),
        n, edges, ops, cuts, source,
    )


@settings(max_examples=15, **FUZZ_SETTINGS)
@given(**GRAPH_SPEC)
def test_fuzz_wbfs(n, edges, ops, cuts, source) -> None:
    check_fuzz_case(
        "wbfs",
        Schedule(priority_update="lazy", delta=1),
        n, edges, ops, cuts, source,
    )


@settings(max_examples=25, **FUZZ_SETTINGS)
@given(strategy=st.sampled_from(["lazy", "eager_no_fusion"]), **GRAPH_SPEC)
def test_fuzz_kcore(strategy, n, edges, ops, cuts, source) -> None:
    check_fuzz_case(
        "kcore",
        Schedule(priority_update=strategy, delta=1),
        n, edges, ops, cuts, source,
    )
