"""Tests for the framework-emulation presets and the evaluation harness."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHMS,
    FRAMEWORKS,
    dijkstra_reference,
    kcore_reference,
    run_framework,
    supports,
)
from repro.errors import GraphError
from repro.eval import (
    PAPER_TABLE5,
    build_matrix,
    count_lines,
    datasets,
    dsl_line_counts,
    format_table,
    run_cell,
    slowdown_matrix,
)
from repro.graph import rmat, road_grid


@pytest.fixture(scope="module")
def social():
    graph = rmat(9, 12, seed=3)
    source = int(np.argmax(graph.out_degrees()))
    return graph, source, dijkstra_reference(graph, source)


class TestSupportMatrix:
    def test_graphit_supports_everything(self):
        assert all(supports("graphit", algorithm) for algorithm in ALGORITHMS)

    def test_gapbs_lacks_kcore_and_setcover(self):
        assert not supports("gapbs", "kcore")
        assert not supports("gapbs", "setcover")
        assert supports("gapbs", "sssp")

    def test_galois_lacks_strict_priority_algorithms(self):
        # Section 6: Galois cannot run wBFS, k-core, or SetCover.
        assert not supports("galois", "wbfs")
        assert not supports("galois", "kcore")
        assert not supports("galois", "setcover")

    def test_unordered_frameworks_lack_setcover(self):
        assert not supports("ligra", "setcover")
        assert not supports("graphit_unordered", "setcover")

    def test_unknown_names_rejected(self):
        with pytest.raises(GraphError):
            supports("pregel", "sssp")
        with pytest.raises(GraphError):
            supports("graphit", "pagerank")


class TestRunFramework:
    def test_all_frameworks_agree_on_sssp(self, social):
        graph, source, reference = social
        for framework in FRAMEWORKS:
            result = run_framework(framework, "sssp", graph, source, delta=16)
            assert np.array_equal(result.distances, reference), framework

    def test_unsupported_returns_none(self, social):
        graph, _, _ = social
        assert run_framework("gapbs", "kcore", graph.symmetrized()) is None

    def test_kcore_frameworks_agree(self, social):
        graph, _, _ = social
        symmetric = graph.symmetrized()
        reference = kcore_reference(symmetric)
        for framework in ("graphit", "julienne", "graphit_unordered", "ligra"):
            result = run_framework(framework, "kcore", symmetric)
            assert np.array_equal(result.coreness, reference), framework

    def test_ppsp_needs_target(self, social):
        graph, source, _ = social
        with pytest.raises(GraphError):
            run_framework("graphit", "ppsp", graph, source)

    def test_julienne_slower_than_graphit_on_road_sssp(self):
        road = road_grid(24, 26, seed=4)
        graphit = run_framework("graphit", "sssp", road, 0, delta=1024)
        julienne = run_framework("julienne", "sssp", road, 0, delta=1024)
        # The Figure 4 pattern: lazy overheads dominate on road networks.
        assert julienne.stats.simulated_time() > graphit.stats.simulated_time()

    def test_galois_fewer_syncs_more_work(self, social):
        graph, source, _ = social
        galois = run_framework("galois", "sssp", graph, source, delta=16)
        gapbs = run_framework("gapbs", "sssp", graph, source, delta=16)
        assert galois.stats.global_syncs <= gapbs.stats.global_syncs

    def test_setcover_covers(self, social):
        graph, _, _ = social
        symmetric = graph.symmetrized()
        for framework in ("graphit", "julienne"):
            result = run_framework(framework, "setcover", symmetric)
            assert result.fully_covered, framework


class TestDatasets:
    def test_registry_covers_table3(self):
        assert set(datasets.DATASETS) == {"OK", "LJ", "TW", "FT", "WB", "MA", "GE", "RD"}

    def test_loading_is_cached(self):
        a = datasets.load("MA")
        b = datasets.load("MA")
        assert a is b

    def test_road_graphs_have_coordinates(self):
        for name in datasets.ROAD_GRAPHS:
            assert datasets.load(name).has_coordinates

    def test_social_graphs_weight_conventions(self):
        default = datasets.load("LJ")
        assert default.weights.max() < 1000
        log = datasets.load("LJ", weights="log")
        assert log.weights.max() < np.log2(default.num_vertices)

    def test_symmetric_variant(self):
        graph = datasets.load("MA", symmetric=True)
        assert graph.is_symmetric()

    def test_original_weights_only_for_roads(self):
        datasets.load("RD", weights="original")
        with pytest.raises(GraphError):
            datasets.load("LJ", weights="original")

    def test_relative_sizes_mirror_table3(self):
        # FT is the largest social graph; MA the smallest road graph.
        assert datasets.load("FT").num_edges > datasets.load("LJ").num_edges
        assert datasets.load("RD").num_vertices > datasets.load("GE").num_vertices
        assert datasets.load("MA").num_vertices < datasets.load("GE").num_vertices

    def test_best_delta_larger_for_roads(self):
        assert datasets.best_delta("RD") > datasets.best_delta("TW")

    def test_sources_are_valid_and_deterministic(self):
        sources = datasets.sources_for("MA", 3)
        again = datasets.sources_for("MA", 3)
        assert sources == again
        graph = datasets.load("MA")
        assert all(0 <= s < graph.num_vertices for s in sources)
        assert all(graph.out_degree(s) > 0 for s in sources)

    def test_pairs_are_valid(self):
        for source, target in datasets.pairs_for("MA", 3):
            assert source != target

    def test_unknown_dataset_rejected(self):
        with pytest.raises(GraphError):
            datasets.load("XX")


class TestHarness:
    def test_run_cell_measures(self):
        cell = run_cell("graphit", "sssp", "MA", trials=2)
        assert cell.wall_time > 0
        assert cell.simulated_time > 0
        assert cell.runs == 2

    def test_run_cell_none_for_unsupported(self):
        assert run_cell("gapbs", "setcover", "MA") is None

    def test_run_cell_none_for_astar_off_road(self):
        assert run_cell("graphit", "astar", "LJ") is None

    def test_build_and_slowdown_matrix(self):
        matrix = build_matrix(("graphit", "gapbs"), ("sssp",), ("MA",), trials=1)
        slowdowns = slowdown_matrix(matrix)
        values = [v for v in slowdowns.values() if v is not None]
        assert min(values) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in values)

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]


class TestLineCounts:
    def test_count_lines_skips_blank_and_comments(self):
        assert count_lines("a;\n\n% c\n// d\nb;\n") == 2

    def test_dsl_counts_below_paper_graphit(self):
        counts = dsl_line_counts()
        for name, measured in counts.items():
            if name in ("widest", "bellman_ford"):
                continue  # extension programs; not in the paper's Table 5
            published = PAPER_TABLE5[name if name != "wbfs" else "sssp"]["graphit"]
            assert measured <= published + 10, name

    def test_dsl_much_smaller_than_baselines(self):
        counts = dsl_line_counts()
        # The Table 5 claim: several-fold fewer lines than the C++ systems.
        assert counts["sssp"] * 2 < PAPER_TABLE5["sssp"]["gapbs"]
        assert counts["kcore"] * 1.2 < PAPER_TABLE5["kcore"]["julienne"]
