"""Unit tests for GraphBuilder and edge deduplication."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder, from_edges


def test_add_single_edges():
    graph = GraphBuilder(3).add_edge(0, 1, 5).add_edge(1, 2, 7).build()
    assert graph.num_edges == 2
    assert graph.out_weights(0).tolist() == [5]


def test_add_edges_batch():
    graph = GraphBuilder(4).add_edges([0, 1, 2], [1, 2, 3], [1, 2, 3]).build()
    assert graph.num_edges == 3
    assert graph.out_neighbors(2).tolist() == [3]


def test_edges_sorted_by_destination_within_source():
    graph = GraphBuilder(4).add_edge(0, 3).add_edge(0, 1).add_edge(0, 2).build()
    assert graph.out_neighbors(0).tolist() == [1, 2, 3]


def test_default_weights_are_one():
    graph = GraphBuilder(2).add_edges([0], [1]).build()
    assert graph.weights.tolist() == [1]


@pytest.mark.parametrize(
    "mode,expected",
    [("min", 2), ("max", 9), ("first", 5), ("sum", 16)],
)
def test_deduplicate_modes(mode, expected):
    builder = GraphBuilder(2)
    builder.add_edge(0, 1, 5).add_edge(0, 1, 2).add_edge(0, 1, 9)
    graph = builder.build(deduplicate=mode)
    assert graph.num_edges == 1
    assert graph.out_weights(0).tolist() == [expected]


def test_deduplicate_none_keeps_parallel_edges():
    graph = GraphBuilder(2).add_edge(0, 1, 5).add_edge(0, 1, 2).build()
    assert graph.num_edges == 2


def test_deduplicate_only_merges_same_pair():
    builder = GraphBuilder(3)
    builder.add_edge(0, 1, 5).add_edge(0, 2, 2).add_edge(0, 1, 3)
    graph = builder.build(deduplicate="min")
    assert graph.num_edges == 2
    assert graph.out_weights(0).tolist() == [3, 2]


def test_remove_self_loops():
    graph = GraphBuilder(2).add_edge(0, 0).add_edge(0, 1).build(remove_self_loops=True)
    assert graph.num_edges == 1
    assert graph.out_neighbors(0).tolist() == [1]


def test_out_of_range_endpoint_rejected():
    with pytest.raises(GraphError):
        GraphBuilder(2).add_edge(0, 2)
    with pytest.raises(GraphError):
        GraphBuilder(2).add_edge(-1, 0)


def test_unknown_dedup_mode_rejected():
    with pytest.raises(GraphError):
        GraphBuilder(2).add_edge(0, 1).build(deduplicate="median")


def test_empty_builder_builds_empty_graph():
    graph = GraphBuilder(3).build()
    assert graph.num_vertices == 3
    assert graph.num_edges == 0


def test_num_pending_edges():
    builder = GraphBuilder(3).add_edge(0, 1).add_edges([1, 2], [2, 0])
    assert builder.num_pending_edges == 3


def test_from_edges_mixed_arity():
    graph = from_edges(3, [(0, 1), (1, 2, 9)])
    assert graph.out_weights(0).tolist() == [1]
    assert graph.out_weights(1).tolist() == [9]


def test_misaligned_batch_rejected():
    with pytest.raises(GraphError):
        GraphBuilder(3).add_edges([0, 1], [1])
    with pytest.raises(GraphError):
        GraphBuilder(3).add_edges([0, 1], [1, 2], [1])


def test_builder_chaining_returns_self():
    builder = GraphBuilder(2)
    assert builder.add_edge(0, 1) is builder


def test_dedup_sum_large_batch():
    rng = np.random.default_rng(0)
    sources = rng.integers(0, 10, 500)
    dests = rng.integers(0, 10, 500)
    weights = np.ones(500, dtype=np.int64)
    graph = GraphBuilder(10).add_edges(sources, dests, weights).build(deduplicate="sum")
    # Total weight is conserved by sum-dedup.
    assert graph.weights.sum() == 500
