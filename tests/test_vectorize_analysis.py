"""Tests for the UDF vectorization analysis pass and its codegen wiring."""

import pytest

from repro.backend import compile_program
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule
from repro.midend.analysis.diagnostics import DIAGNOSTIC_CODES, lint_program

LAZY = Schedule(priority_update="lazy")


def reports_for(name, schedule=LAZY):
    return compile_program(ALL_PROGRAMS[name], schedule).plan.vectorize


class TestClassification:
    @pytest.mark.parametrize("name", ["sssp", "wbfs", "ppsp"])
    def test_sssp_family_is_write_min(self, name):
        report = reports_for(name)["updateEdge"]
        assert report.vectorizable
        assert report.kernel.kind == "write_min"
        assert report.kernel.value == "(dist[src] + weight)"
        assert report.kernel.hazard == ("dist",)

    def test_widest_is_write_max(self):
        report = reports_for("widest")["updateEdge"]
        assert report.vectorizable
        assert report.kernel.kind == "write_max"
        assert report.kernel.value == "np.minimum(width[src], weight)"
        assert report.kernel.hazard == ("width",)

    def test_astar_is_guarded_write_min(self):
        report = reports_for("astar")["updateEdge"]
        assert report.vectorizable
        kernel = report.kernel
        assert kernel.kind == "guarded_write_min"
        assert kernel.aux == "dist"
        assert kernel.value == "(dist[src] + weight)"
        assert kernel.priority == "(new_val + h[dst])"
        assert kernel.hazard == ("dist",)

    def test_kcore_is_sum_const(self):
        report = reports_for("kcore")["apply_f"]
        assert report.vectorizable
        assert report.kernel.kind == "sum_const"
        assert report.kernel.constant == -1

    def test_kcore_histogram_schedule_is_sum_hist(self):
        report = reports_for(
            "kcore", Schedule(priority_update="lazy_constant_sum")
        )["apply_f"]
        assert report.vectorizable
        assert report.kernel.kind == "sum_hist"
        assert report.kernel.constant == -1

    def test_bellman_ford_falls_back_with_located_reason(self):
        report = reports_for("bellman_ford")["relax"]
        assert not report.vectorizable
        assert report.kernel is None
        assert "changed" in report.reason
        assert report.span.line is not None

    def test_setcover_has_no_apply_sites(self):
        assert reports_for("setcover") == {}


class TestCodegenWiring:
    def test_vectorizable_udf_gets_kernel_descriptor(self):
        program = compile_program(ALL_PROGRAMS["sssp"], LAZY)
        assert "kernel=dict(" in program.source_text
        assert "kind='write_min'" in program.source_text

    def test_fallback_udf_gets_no_kernel_descriptor(self):
        program = compile_program(ALL_PROGRAMS["bellman_ford"], LAZY)
        assert "kernel=dict(" not in program.source_text

    def test_eager_operator_gets_kernel_descriptor(self):
        program = compile_program(
            ALL_PROGRAMS["sssp"], Schedule(priority_update="eager_with_fusion")
        )
        assert "ctx.ordered_process_eager(" in program.source_text
        assert "kernel=dict(" in program.source_text

    def test_histogram_operator_gets_kernel_descriptor(self):
        program = compile_program(
            ALL_PROGRAMS["kcore"], Schedule(priority_update="lazy_constant_sum")
        )
        assert "apply_update_priority_histogram" in program.source_text
        assert "kind='sum_hist'" in program.source_text


class TestDiagnostics:
    def test_v101_is_registered(self):
        assert "V101" in DIAGNOSTIC_CODES
        assert "scalar" in DIAGNOSTIC_CODES["V101"]

    def test_lint_reports_fallback_as_info(self):
        diagnostics = lint_program(
            ALL_PROGRAMS["bellman_ford"], LAZY, include_info=True
        )
        v101 = [d for d in diagnostics if d.code == "V101"]
        assert len(v101) == 1
        assert "relax" in v101[0].message
        assert v101[0].severity.name == "INFO"

    def test_lint_is_quiet_for_vectorizable_programs(self):
        diagnostics = lint_program(ALL_PROGRAMS["sssp"], LAZY, include_info=True)
        assert not [d for d in diagnostics if d.code == "V101"]

    def test_info_diagnostics_hidden_by_default(self):
        diagnostics = lint_program(ALL_PROGRAMS["bellman_ford"], LAZY)
        assert not [d for d in diagnostics if d.code == "V101"]
