"""The span/metric name registry check (the typo guard).

Every literal name passed to a ``span``/``stat_span``/``instant`` hook or a
``metrics.counter``/``gauge``/``histogram`` accessor anywhere under
``src/repro`` must be declared in ``repro.obs.events`` — and vice versa,
every declared name must actually be referenced somewhere.  A misspelled
hook name therefore fails this test instead of silently minting a ghost
series that fragments profiles and dashboards.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.events import CATEGORIES, METRIC_KINDS, METRICS, SPAN_NAMES

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# with trace_span("bucket.advance", "bucket", ...) / obs.span(...) /
# trace_stat_span(\n    "program.run", "runtime", ...)
SPAN_CALL = re.compile(
    r'\b(?:obs\.)?(?:trace_)?(?:stat_)?span\(\s*"([^"]+)"\s*,\s*"([^"]+)"'
)
INSTANT_CALL = re.compile(
    r'\b(?:obs\.)?(?:trace_)?instant\(\s*"([^"]+)"\s*,\s*"([^"]+)"'
)
METRIC_CALL = re.compile(
    r'\bmetrics\.(counter|gauge|histogram)\(\s*"([^"]+)"'
)


def iter_sources():
    for path in sorted(SRC.rglob("*.py")):
        yield path, path.read_text(encoding="utf-8")


def scan_span_sites():
    """Every literal (name, cat) at a span/instant hook site, with origin."""
    sites = []
    for path, text in iter_sources():
        for pattern in (SPAN_CALL, INSTANT_CALL):
            for match in pattern.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                sites.append((f"{path.name}:{line}", match.group(1), match.group(2)))
    return sites


def scan_metric_sites():
    sites = []
    for path, text in iter_sources():
        for match in METRIC_CALL.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            sites.append((f"{path.name}:{line}", match.group(2), match.group(1)))
    return sites


class TestDeclarationsWellFormed:
    def test_span_categories_are_known(self):
        for name, cat in SPAN_NAMES.items():
            assert cat in CATEGORIES, f"{name} declared with unknown cat {cat!r}"

    def test_metric_declarations_are_known(self):
        for name, spec in METRICS.items():
            assert spec["kind"] in METRIC_KINDS, name
            assert spec["cat"] in CATEGORIES, name

    def test_no_name_is_both_span_and_metric(self):
        # Overlap would make `repro last-run` / dashboards ambiguous.
        assert not set(SPAN_NAMES) & set(METRICS)


class TestEmittedNamesAreDeclared:
    def test_the_scanner_sees_the_hook_sites(self):
        # Guard against the regexes rotting: the tree has dozens of sites.
        assert len(scan_span_sites()) >= 30
        assert len(scan_metric_sites()) >= 20

    def test_every_span_site_is_declared(self):
        undeclared = [
            (origin, name)
            for origin, name, _cat in scan_span_sites()
            if name not in SPAN_NAMES
        ]
        assert not undeclared, (
            f"span names not declared in obs/events.py SPAN_NAMES: {undeclared}"
        )

    def test_every_span_site_uses_the_declared_category(self):
        mismatched = [
            (origin, name, cat, SPAN_NAMES[name])
            for origin, name, cat in scan_span_sites()
            if name in SPAN_NAMES and SPAN_NAMES[name] != cat
        ]
        assert not mismatched, f"span category mismatches: {mismatched}"

    def test_every_metric_site_is_declared_with_matching_kind(self):
        problems = []
        for origin, name, kind in scan_metric_sites():
            spec = METRICS.get(name)
            if spec is None:
                problems.append((origin, name, "undeclared"))
            elif spec["kind"] != kind:
                problems.append((origin, name, f"{kind} != {spec['kind']}"))
        assert not problems, f"metric declaration problems: {problems}"


class TestDeclaredNamesAreEmitted:
    """The registry must not accumulate dead declarations either —
    a stale entry hides real typos behind an ever-growing allowlist."""

    def test_every_declared_span_name_appears_in_source(self):
        blob = "\n".join(text for _, text in iter_sources())
        dead = [n for n in SPAN_NAMES if f'"{n}"' not in blob]
        assert not dead, f"SPAN_NAMES entries never emitted: {dead}"

    def test_every_declared_metric_appears_at_a_hook_site(self):
        emitted = {name for _, name, _ in scan_metric_sites()}
        dead = sorted(set(METRICS) - emitted)
        assert not dead, f"METRICS entries never emitted: {dead}"
