"""Direct tests of the ordered-processing executors (repro.core)."""

import numpy as np
import pytest

from repro.buckets import EagerBucketQueue, LazyBucketQueue, RelaxedPriorityQueue
from repro.core.executors import (
    make_min_relaxer,
    make_min_relaxer_pull,
    run_eager,
    run_lazy,
    run_lazy_histogram,
    run_lazy_pull,
    run_relaxed,
)
from repro.errors import CompileError
from repro.graph import from_edges, rmat
from repro.graph.properties import INT_MAX
from repro.runtime import RuntimeStats, VirtualThreadPool


def setup_sssp(graph, source, queue_class, **kwargs):
    distances = np.full(graph.num_vertices, INT_MAX, dtype=np.int64)
    distances[source] = 0
    stats = RuntimeStats(num_threads=kwargs.get("num_threads", 2))
    queue = queue_class(distances, stats=stats, initial_vertices=[source], **kwargs)
    return distances, stats, queue


@pytest.fixture
def graph():
    return rmat(8, 8, seed=4)


@pytest.fixture
def source(graph):
    return int(np.argmax(graph.out_degrees()))


@pytest.fixture
def reference(graph, source):
    from repro.algorithms import dijkstra_reference

    return dijkstra_reference(graph, source)


class TestRunEager:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_eager(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)
        assert stats.global_syncs == stats.rounds

    def test_fusion_counts_fused_rounds(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_eager(graph, queue, relax, pool, stats, fusion_threshold=1000)
        assert np.array_equal(distances, reference)
        assert stats.fused_rounds > 0

    def test_thread_count_mismatch_rejected(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(3)
        relax = make_min_relaxer(graph, distances, queue, stats)
        with pytest.raises(CompileError):
            run_eager(graph, queue, relax, pool, stats)

    def test_stop_condition_halts(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        calls = []

        def stop():
            calls.append(1)
            return len(calls) >= 2

        run_eager(graph, queue, relax, pool, stats, should_stop=stop)
        assert stats.rounds <= 2


class TestRunLazy:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(graph, source, LazyBucketQueue, delta=8)
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_lazy(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)
        assert stats.global_syncs == 2 * stats.rounds

    def test_round_overhead_charged(self, graph, source):
        def run_with(overhead):
            distances, stats, queue = setup_sssp(
                graph, source, LazyBucketQueue, delta=8
            )
            pool = VirtualThreadPool(2)
            relax = make_min_relaxer(graph, distances, queue, stats)
            run_lazy(graph, queue, relax, pool, stats, round_overhead=overhead)
            return stats

        plain = run_with(None)
        charged = run_with(lambda frontier: 1000)
        assert charged.total_work > plain.total_work

    def test_pull_variant(self, graph, source, reference):
        distances, stats, queue = setup_sssp(graph, source, LazyBucketQueue, delta=8)
        pool = VirtualThreadPool(2)
        frontier_map = np.zeros(graph.num_vertices, dtype=bool)
        relax = make_min_relaxer_pull(graph, distances, queue, stats, frontier_map)
        run_lazy_pull(graph, queue, relax, pool, stats, frontier_map)
        assert np.array_equal(distances, reference)
        # Pull never counts atomics (Figure 9(b)).
        assert stats.atomic_ops == 0


class TestRunLazyHistogram:
    def test_decrement_cascade(self):
        # A 4-clique: peeling cascades entirely within bucket 3.
        edges = [(u, v) for u in range(4) for v in range(4) if u != v]
        graph = from_edges(4, edges)
        degrees = graph.out_degrees().astype(np.int64)
        stats = RuntimeStats(num_threads=2)
        queue = LazyBucketQueue(degrees, delta=1, stats=stats)
        pool = VirtualThreadPool(2)
        seen = []
        run_lazy_histogram(
            graph,
            queue,
            stats,
            pool,
            constant=-1,
            on_bucket=lambda bucket, k: seen.append((k, sorted(bucket.tolist()))),
        )
        assert seen == [(3, [0, 1, 2, 3])]
        assert stats.histogram_updates > 0

    def test_stop_condition(self):
        graph = from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        degrees = graph.out_degrees().astype(np.int64)
        stats = RuntimeStats(num_threads=1)
        queue = LazyBucketQueue(degrees, delta=1, stats=stats)
        pool = VirtualThreadPool(1)
        run_lazy_histogram(
            graph, queue, stats, pool, constant=-1, should_stop=lambda: True
        )
        assert stats.rounds == 0


class TestRunRelaxed:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, RelaxedPriorityQueue, delta=8
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_relaxed(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)

    def test_fewer_syncs_than_rounds(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, RelaxedPriorityQueue, delta=8, chunk_size=16
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_relaxed(graph, queue, relax, pool, stats)
        assert stats.global_syncs < stats.rounds
