"""Direct tests of the ordered-processing executors (repro.core)."""

import numpy as np
import pytest

from repro.buckets import EagerBucketQueue, LazyBucketQueue, RelaxedPriorityQueue
from repro.core.executors import (
    make_min_relaxer,
    make_min_relaxer_pull,
    run_eager,
    run_lazy,
    run_lazy_histogram,
    run_lazy_pull,
    run_relaxed,
)
from repro.errors import CompileError
from repro.graph import from_edges, rmat
from repro.graph.properties import INT_MAX
from repro.runtime import RuntimeStats, VirtualThreadPool


def setup_sssp(graph, source, queue_class, **kwargs):
    distances = np.full(graph.num_vertices, INT_MAX, dtype=np.int64)
    distances[source] = 0
    stats = RuntimeStats(num_threads=kwargs.get("num_threads", 2))
    queue = queue_class(distances, stats=stats, initial_vertices=[source], **kwargs)
    return distances, stats, queue


@pytest.fixture
def graph():
    return rmat(8, 8, seed=4)


@pytest.fixture
def source(graph):
    return int(np.argmax(graph.out_degrees()))


@pytest.fixture
def reference(graph, source):
    from repro.algorithms import dijkstra_reference

    return dijkstra_reference(graph, source)


class TestRunEager:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_eager(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)
        assert stats.global_syncs == stats.rounds

    def test_fusion_counts_fused_rounds(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_eager(graph, queue, relax, pool, stats, fusion_threshold=1000)
        assert np.array_equal(distances, reference)
        assert stats.fused_rounds > 0

    def test_thread_count_mismatch_rejected(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(3)
        relax = make_min_relaxer(graph, distances, queue, stats)
        with pytest.raises(CompileError):
            run_eager(graph, queue, relax, pool, stats)

    def test_stop_condition_halts(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, EagerBucketQueue, delta=8, num_threads=2
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        calls = []

        def stop():
            calls.append(1)
            return len(calls) >= 2

        run_eager(graph, queue, relax, pool, stats, should_stop=stop)
        assert stats.rounds <= 2


class TestRunLazy:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(graph, source, LazyBucketQueue, delta=8)
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_lazy(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)
        assert stats.global_syncs == 2 * stats.rounds

    def test_round_overhead_charged(self, graph, source):
        def run_with(overhead):
            distances, stats, queue = setup_sssp(
                graph, source, LazyBucketQueue, delta=8
            )
            pool = VirtualThreadPool(2)
            relax = make_min_relaxer(graph, distances, queue, stats)
            run_lazy(graph, queue, relax, pool, stats, round_overhead=overhead)
            return stats

        plain = run_with(None)
        charged = run_with(lambda frontier: 1000)
        assert charged.total_work > plain.total_work

    def test_pull_variant(self, graph, source, reference):
        distances, stats, queue = setup_sssp(graph, source, LazyBucketQueue, delta=8)
        pool = VirtualThreadPool(2)
        frontier_map = np.zeros(graph.num_vertices, dtype=bool)
        relax = make_min_relaxer_pull(graph, distances, queue, stats, frontier_map)
        run_lazy_pull(graph, queue, relax, pool, stats, frontier_map)
        assert np.array_equal(distances, reference)
        # Pull never counts atomics (Figure 9(b)).
        assert stats.atomic_ops == 0


class TestRunLazyHistogram:
    def test_decrement_cascade(self):
        # A 4-clique: peeling cascades entirely within bucket 3.
        edges = [(u, v) for u in range(4) for v in range(4) if u != v]
        graph = from_edges(4, edges)
        degrees = graph.out_degrees().astype(np.int64)
        stats = RuntimeStats(num_threads=2)
        queue = LazyBucketQueue(degrees, delta=1, stats=stats)
        pool = VirtualThreadPool(2)
        seen = []
        run_lazy_histogram(
            graph,
            queue,
            stats,
            pool,
            constant=-1,
            on_bucket=lambda bucket, k: seen.append((k, sorted(bucket.tolist()))),
        )
        assert seen == [(3, [0, 1, 2, 3])]
        assert stats.histogram_updates > 0

    def test_stop_condition(self):
        graph = from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        degrees = graph.out_degrees().astype(np.int64)
        stats = RuntimeStats(num_threads=1)
        queue = LazyBucketQueue(degrees, delta=1, stats=stats)
        pool = VirtualThreadPool(1)
        run_lazy_histogram(
            graph, queue, stats, pool, constant=-1, should_stop=lambda: True
        )
        assert stats.rounds == 0


class TestRunRelaxed:
    def test_basic(self, graph, source, reference):
        distances, stats, queue = setup_sssp(
            graph, source, RelaxedPriorityQueue, delta=8
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_relaxed(graph, queue, relax, pool, stats)
        assert np.array_equal(distances, reference)

    def test_fewer_syncs_than_rounds(self, graph, source):
        distances, stats, queue = setup_sssp(
            graph, source, RelaxedPriorityQueue, delta=8, chunk_size=16
        )
        pool = VirtualThreadPool(2)
        relax = make_min_relaxer(graph, distances, queue, stats)
        run_relaxed(graph, queue, relax, pool, stats)
        assert stats.global_syncs < stats.rounds


class TestPartitionEdgeCases:
    """Regression tests for the VirtualThreadPool.partition fixes that came
    with the real parallel engine: empty frontiers, frontiers smaller than
    one chunk, and degenerate degree distributions under the edge-aware
    policy."""

    POLICIES = (
        "static-vertex-parallel",
        "dynamic-vertex-parallel",
        "edge-aware-dynamic-vertex-parallel",
    )

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("threads", (1, 3, 8))
    def test_empty_frontier_uniform_shape(self, policy, threads):
        pool = VirtualThreadPool(threads, policy)
        empty = np.empty(0, dtype=np.int64)
        parts = pool.partition(empty, degrees=empty)
        assert len(parts) == threads
        for part in parts:
            assert part.size == 0
            assert part.dtype == np.int64

    @pytest.mark.parametrize("policy", POLICIES)
    def test_partition_preserves_items_in_order(self, policy):
        items = np.arange(100, 123, dtype=np.int64)
        degrees = (items * 7) % 5
        pool = VirtualThreadPool(4, policy, chunk_size=3)
        parts = pool.partition(items, degrees=degrees)
        assert len(parts) == 4
        assert np.array_equal(np.concatenate(parts), items) or np.array_equal(
            np.sort(np.concatenate(parts)), items
        )
        # No item lost, none duplicated.
        assert sum(p.size for p in parts) == items.size

    def test_chunk_size_larger_than_frontier_spreads(self):
        """A frontier smaller than one chunk used to land entirely on thread
        0; it must now spread across the pool."""
        pool = VirtualThreadPool(4, "dynamic-vertex-parallel", chunk_size=1024)
        items = np.arange(8, dtype=np.int64)
        parts = pool.partition(items)
        nonempty = [p for p in parts if p.size]
        assert len(nonempty) == 4
        assert max(p.size for p in nonempty) == 2

    def test_single_item_frontier(self):
        pool = VirtualThreadPool(4, "dynamic-vertex-parallel", chunk_size=64)
        parts = pool.partition(np.array([42], dtype=np.int64))
        assert [p.size for p in parts] == [1, 0, 0, 0]
        assert parts[0][0] == 42

    def test_large_frontier_keeps_historical_dealing(self):
        """Frontiers bigger than chunk_size must keep the historical
        round-robin dealing bit-for-bit (stats invariance across PRs)."""
        pool = VirtualThreadPool(2, "dynamic-vertex-parallel", chunk_size=2)
        items = np.arange(10, dtype=np.int64)
        parts = pool.partition(items)
        assert np.array_equal(parts[0], [0, 1, 4, 5, 8, 9])
        assert np.array_equal(parts[1], [2, 3, 6, 7])

    def test_edge_aware_all_zero_degrees_even_split(self):
        """An all-zero-degree frontier must degenerate to an even contiguous
        split, not a skewed one."""
        pool = VirtualThreadPool(4, "edge-aware-dynamic-vertex-parallel")
        items = np.arange(8, dtype=np.int64)
        parts = pool.partition(items, degrees=np.zeros(8, dtype=np.int64))
        assert [p.size for p in parts] == [2, 2, 2, 2]

    def test_edge_aware_hub_rebalances(self):
        """A hub vertex blowing one thread's budget must not strand the
        remaining threads without work."""
        pool = VirtualThreadPool(4, "edge-aware-dynamic-vertex-parallel")
        items = np.arange(4, dtype=np.int64)
        degrees = np.array([100, 0, 0, 0], dtype=np.int64)
        parts = pool.partition(items, degrees=degrees)
        assert [p.size for p in parts] == [1, 1, 1, 1]

    def test_edge_aware_fewer_items_than_threads(self):
        pool = VirtualThreadPool(8, "edge-aware-dynamic-vertex-parallel")
        items = np.array([5, 9], dtype=np.int64)
        parts = pool.partition(items, degrees=np.array([3, 4], dtype=np.int64))
        assert len(parts) == 8
        assert sum(p.size for p in parts) == 2
        assert np.array_equal(np.concatenate(parts), items)

    def test_edge_aware_requires_degrees(self):
        pool = VirtualThreadPool(2, "edge-aware-dynamic-vertex-parallel")
        with pytest.raises(Exception):
            pool.partition(np.arange(4, dtype=np.int64))
