"""Adversarial and randomized stress tests for the parallel engine.

Three layers of defense:

1. **Adversarial topologies** — stars (one giant frontier chunk vs many
   empty ones), chains (every frontier is a single vertex, so every round
   takes the engine's single-chunk fast path), duplicate-heavy multigraphs
   (the same destination hammered from one chunk), and zero-weight edges
   (same-bucket cascades) — each checked bit-identical against the scalar
   oracle at several worker counts.

2. **Property-based fuzz** (hypothesis, derandomized for CI stability):
   arbitrary small multigraphs under arbitrary strategy/worker
   combinations must stay bit-identical to the oracle.

3. **Race-injection regression** — the R-family race analysis must keep
   catching an unguarded shared write when the schedule actually requests
   real parallel execution, end to end through ``lint_program``, and the
   generated Python must pin its execution mode via
   ``ctx.declare_execution``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.program import compile_program
from repro.graph.builder import from_edges
from repro.graph.generators import path_graph, star_graph
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.analysis.diagnostics import Severity, lint_program
from repro.midend.schedule import Schedule

pytestmark = pytest.mark.slow

PARALLEL_ONLY = {
    "execution",
    "parallel_rounds",
    "barrier_waits",
    "barrier_wait_time",
    "worker_wall_time",
}


def deterministic_stats(stats) -> dict:
    dump = dataclasses.asdict(stats)
    dump.pop("_current_work", None)
    for key in PARALLEL_ONLY:
        dump.pop(key, None)
    return dump


def assert_parallel_matches_oracle(source, schedule, args, graph):
    oracle = compile_program(source, schedule).run(
        list(args), graph=graph, vectorize=False
    )
    parallel = compile_program(source, schedule.with_(execution="parallel")).run(
        list(args), graph=graph, vectorize=True
    )
    for name, value in oracle.globals.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, parallel.globals[name]), (
                f"vector {name} diverged on {graph.num_vertices} vertices / "
                f"{graph.num_edges} edges at {schedule.num_threads} workers"
            )
    assert deterministic_stats(oracle.stats) == deterministic_stats(parallel.stats)
    return oracle, parallel


# ----------------------------------------------------------------------
# 1. Adversarial topologies
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", (2, 4, 8))
@pytest.mark.parametrize("strategy", ("lazy", "eager_with_fusion"))
class TestAdversarialTopologies:
    def test_star(self, strategy, workers):
        """One hub, hundreds of leaves: the first round is one giant
        frontier, every later round is empty-ish — exercises both the
        fan-out partition and the empty-chunk skip."""
        graph = star_graph(257, weight=2, symmetric=True)
        assert_parallel_matches_oracle(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update=strategy, delta=2, num_threads=workers),
            ["prog", "-", "0"],
            graph,
        )

    def test_chain(self, strategy, workers):
        """A directed path: every frontier is exactly one vertex, so every
        round must take the single-chunk inline fast path and record zero
        parallel rounds of overhead."""
        graph = path_graph(96, weight=3)
        _, parallel = assert_parallel_matches_oracle(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update=strategy, delta=4, num_threads=workers),
            ["prog", "-", "0"],
            graph,
        )
        assert parallel.stats.parallel_rounds == 0

    def test_duplicate_heavy_multigraph(self, strategy, workers):
        """Many parallel edges between the same endpoints: one commit sees
        the same destination dozens of times, stressing the dedup/ordering
        guarantees of the batch relaxation."""
        edges = []
        for u in range(8):
            for v in range(8):
                if u != v:
                    for w in (1, 1, 2, 2, 3):
                        edges.append((u, v, w))
        graph = from_edges(8, edges)
        assert_parallel_matches_oracle(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update=strategy, delta=1, num_threads=workers),
            ["prog", "-", "0"],
            graph,
        )

    def test_zero_weight_edges(self, strategy, workers):
        """Zero-weight edges keep relaxed vertices inside the current
        bucket — the same-priority cascade where eager fusion churns."""
        edges = [(v, v + 1, 0) for v in range(30)]
        edges += [(v, (v * 7 + 3) % 31, 2) for v in range(31)]
        graph = from_edges(31, edges)
        assert_parallel_matches_oracle(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update=strategy, delta=2, num_threads=workers),
            ["prog", "-", "0"],
            graph,
        )


# ----------------------------------------------------------------------
# 2. Property-based fuzz (derandomized: same cases on every run)
# ----------------------------------------------------------------------

_edges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=80,
)


@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=_edges_strategy,
    strategy=st.sampled_from(("lazy", "eager_no_fusion", "eager_with_fusion")),
    workers=st.sampled_from((2, 4, 8)),
    delta=st.sampled_from((1, 3)),
)
def test_fuzz_parallel_matches_oracle(edges, strategy, workers, delta):
    graph = from_edges(24, [(u, v, w) for u, v, w in edges if u != v])
    if graph.num_edges == 0:
        return
    assert_parallel_matches_oracle(
        ALL_PROGRAMS["sssp"],
        Schedule(priority_update=strategy, delta=delta, num_threads=workers),
        ["prog", "-", "0"],
        graph,
    )


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    workers=st.sampled_from((2, 4)),
)
def test_fuzz_kcore_constant_sum(seed, workers):
    """Random symmetric graphs through the histogram (constant-sum) path."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 30))
    m = int(rng.integers(n, 4 * n))
    edges = [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, m), rng.integers(0, n, m))
        if u != v
    ]
    if not edges:
        return
    graph = from_edges(n, edges).symmetrized()
    assert_parallel_matches_oracle(
        ALL_PROGRAMS["kcore"],
        Schedule(priority_update="lazy_constant_sum", num_threads=workers),
        ["prog", "-"],
        graph,
    )


# ----------------------------------------------------------------------
# 3. Race-injection regression (R-family, end to end)
# ----------------------------------------------------------------------

RACY_SSSP = ALL_PROGRAMS["sssp"].replace(
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
    "    dist[dst] = new_dist;\n"
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
)
assert RACY_SSSP != ALL_PROGRAMS["sssp"]


class TestInjectedRaceIsCaught:
    def test_r001_under_parallel_schedule(self):
        """The injected unguarded shared write must be flagged R001 when the
        schedule requests the real-thread engine."""
        schedule = Schedule(
            priority_update="eager_with_fusion",
            delta=3,
            num_threads=4,
            execution="parallel",
        )
        diags = lint_program(RACY_SSSP, schedule=schedule, filename="racy.gt")
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert [d.code for d in errors] == ["R001"]

    def test_clean_program_stays_clean_under_parallel_schedule(self):
        schedule = Schedule(
            priority_update="lazy", num_threads=4, execution="parallel"
        )
        assert lint_program(ALL_PROGRAMS["sssp"], schedule=schedule) == []

    def test_generated_python_pins_execution_mode(self):
        """End to end: the Python backend must bake the schedule's execution
        mode into the generated program so a run can never silently use the
        wrong engine."""
        program = compile_program(
            ALL_PROGRAMS["sssp"],
            Schedule(priority_update="lazy", num_threads=4, execution="parallel"),
        )
        assert "ctx.declare_execution('parallel')" in program.source_text
