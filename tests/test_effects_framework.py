"""Tests for the whole-program effect analysis framework.

Covers the per-UDF read/write summaries, monotonicity verdicts and their
``M001`` schedule gate, the pairwise fusion-safety relation (positive and
negative cases), the ``repro analyze`` document builder, and the span
audit: every diagnostic the toolchain can emit carries a resolvable span.
"""

import pytest

from repro.analyze import (
    analyze_source,
    build_analysis_document,
    render_analysis_text,
)
from repro.errors import CompileError, SchedulingError
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.analysis.diagnostics import Severity, lint_program
from repro.midend.analysis.effects import (
    check_fusion_safety,
    fusion_matrix,
)
from repro.midend.schedule import Schedule

# kcore with a sign-varying priority delta: `k - 1` depends on the current
# priority, so the update is provably non-monotone for a lower_first queue.
NON_MONOTONE = ALL_PROGRAMS["kcore"].replace(
    "pq.updatePrioritySum(dst, -1, k);",
    "pq.updatePrioritySum(dst, k - 1, k);",
)
assert NON_MONOTONE != ALL_PROGRAMS["kcore"]


def _effects(name):
    effects, _ = analyze_source(ALL_PROGRAMS[name])
    return effects


class TestEffectSummaries:
    def test_sssp_read_write_sets(self):
        effects = _effects("sssp")
        udf = effects.udfs["updateEdge"]
        assert udf.read_set() == {"dist"}
        assert udf.write_set() == set()
        assert udf.scalar_write_set() == set()
        updates = udf.priority_updates
        assert len(updates) == 1
        assert updates[0].index_name == "dst"
        assert updates[0].provenance.value == "dst"

    def test_runtime_summary_folds_queue_onto_priority_vector(self):
        summary = _effects("sssp").runtime_summary()
        contract = summary["updateEdge"]
        # The priority update targets queue pq whose vector is dist, so
        # the runtime projection must list dist on both sides.
        assert "dist" in contract["reads"]
        assert "dist" in contract["writes"]
        assert contract["racy"] == []
        assert set(contract["write_index"]["dist"]) <= {"src", "dst"}

    def test_every_builtin_analyzes(self):
        for name in sorted(ALL_PROGRAMS):
            effects, resolved = analyze_source(ALL_PROGRAMS[name])
            # Unordered baselines (bellman_ford) have no priority queue;
            # everything else must surface one.
            if effects.has_ordered_loop:
                assert effects.queues, name
                # Extern bucket processing has no analyzable apply UDF.
                if not effects.uses_extern_processing:
                    assert effects.udfs, name


class TestMonotonicity:
    def test_every_builtin_is_monotone_and_admissible(self):
        for name in sorted(ALL_PROGRAMS):
            effects, _ = analyze_source(ALL_PROGRAMS[name])
            for verdict in effects.monotonicity:
                assert verdict.to_json()["verdict"] != "non-monotone", name
                assert verdict.to_json()["admissible"], name

    def test_non_monotone_negative_case(self):
        effects, _ = analyze_source(NON_MONOTONE, filename="nm.gt")
        verdicts = [v.to_json() for v in effects.monotonicity]
        assert len(verdicts) == 1
        assert verdicts[0]["verdict"] == "non-monotone"
        assert verdicts[0]["admissible"] is False
        assert verdicts[0]["line"] == 9

    def test_m001_gates_fused_schedule(self):
        schedule = Schedule(priority_update="eager_with_fusion", delta=3)
        diagnostics = lint_program(
            NON_MONOTONE, schedule=schedule, filename="nm.gt"
        )
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        assert [d.code for d in errors] == ["M001"]
        assert "non-monotone" in errors[0].message
        assert (errors[0].span.file, errors[0].span.line) == ("nm.gt", 9)

    def test_in_order_schedule_still_admits_non_monotone(self):
        # Strict in-order processing never reorders buckets, so the
        # non-monotone update is legal there — only relaxed schedules
        # must be rejected.
        diagnostics = lint_program(NON_MONOTONE, filename="nm.gt")
        assert [d for d in diagnostics if d.severity is Severity.ERROR] == []


class TestFusionSafety:
    def test_sssp_wbfs_fusable(self):
        verdict = check_fusion_safety(
            "sssp", _effects("sssp"), "wbfs", _effects("wbfs")
        )
        assert verdict.fusable
        assert verdict.reasons == []

    def test_order_mismatch_blocks(self):
        verdict = check_fusion_safety(
            "sssp", _effects("sssp"), "widest", _effects("widest")
        )
        assert not verdict.fusable
        assert any("processing-order" in r for r in verdict.reasons)

    def test_discipline_mismatch_blocks(self):
        verdict = check_fusion_safety(
            "sssp", _effects("sssp"), "kcore", _effects("kcore")
        )
        assert not verdict.fusable
        assert any("update-discipline" in r for r in verdict.reasons)

    def test_extern_processing_blocks(self):
        verdict = check_fusion_safety(
            "setcover", _effects("setcover"), "sssp", _effects("sssp")
        )
        assert not verdict.fusable
        assert any("extern" in r for r in verdict.reasons)

    def test_fusion_matrix_covers_all_pairs(self):
        summaries = {n: _effects(n) for n in ("sssp", "wbfs", "widest")}
        verdicts = fusion_matrix(summaries)
        pairs = {tuple(v.to_json()["pair"]) for v in verdicts}
        assert pairs == {
            ("sssp", "wbfs"),
            ("sssp", "widest"),
            ("wbfs", "widest"),
        }


class TestAnalyzeDocument:
    def test_document_structure(self):
        document = build_analysis_document(
            {n: ALL_PROGRAMS[n] for n in ("sssp", "kcore")}
        )
        assert set(document) == {"programs", "fusion"}
        assert set(document["programs"]) == {"sssp", "kcore"}
        assert len(document["fusion"]) == 1
        report = document["programs"]["sssp"]
        assert report["schedule"]["priority_update"]
        assert "updateEdge" in report["runtime_summary"]

    def test_single_program_reports_self_pair(self):
        document = build_analysis_document({"sssp": ALL_PROGRAMS["sssp"]})
        assert len(document["fusion"]) == 1
        assert document["fusion"][0]["pair"] == ["sssp", "sssp"]
        assert document["fusion"][0]["fusable"]

    def test_extern_fallback_resolves_lazy(self):
        _, resolved = analyze_source(ALL_PROGRAMS["setcover"])
        assert resolved.priority_update == "lazy"

    def test_explicit_infeasible_schedule_raises(self):
        with pytest.raises((SchedulingError, CompileError)):
            analyze_source(
                ALL_PROGRAMS["setcover"],
                schedule=Schedule(priority_update="eager_with_fusion"),
            )

    def test_text_rendering(self):
        document = build_analysis_document(
            {n: ALL_PROGRAMS[n] for n in ("sssp", "widest")}
        )
        text = render_analysis_text(document)
        assert "monotonicity priority(pq): monotone-decreasing" in text
        assert "monotonicity priority(pq): monotone-increasing" in text
        assert "fusion sssp x widest: blocked" in text
        assert "processing-order mismatch" in text


# One intentionally broken source per diagnostic family; every produced
# diagnostic must carry a span that resolves to file, line, and column.
RACY_SSSP = ALL_PROGRAMS["sssp"].replace(
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
    "    dist[dst] = new_dist;\n"
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
)

SPAN_CASES = {
    "P001": ("func main(", None),  # parse error
    "T001": (
        ALL_PROGRAMS["sssp"].replace(
            "dist[src] + weight", 'dist[src] + "oops"'
        ),
        None,
    ),
    "M001": (
        NON_MONOTONE,
        Schedule(priority_update="eager_with_fusion", delta=3),
    ),
    "R001": (
        RACY_SSSP,
        Schedule(
            priority_update="eager_with_fusion",
            delta=3,
            num_threads=4,
            execution="parallel",
        ),
    ),
}


class TestSpanAudit:
    @pytest.mark.parametrize("code", sorted(SPAN_CASES))
    def test_diagnostic_spans_resolve(self, code):
        source, schedule = SPAN_CASES[code]
        diagnostics = lint_program(
            source, schedule=schedule, filename="case.gt", include_info=True
        )
        produced = {d.code for d in diagnostics}
        assert code in produced, f"expected {code}, got {produced}"
        for diagnostic in diagnostics:
            span = diagnostic.span
            assert span is not None, diagnostic.code
            assert span.file == "case.gt", diagnostic.code
            assert span.line >= 1, diagnostic.code
            assert span.column >= 1, diagnostic.code

    def test_all_builtins_lint_spans_resolve(self):
        for name in sorted(ALL_PROGRAMS):
            for diagnostic in lint_program(
                ALL_PROGRAMS[name], filename=f"{name}.gt", include_info=True
            ):
                span = diagnostic.span
                assert span is not None and span.file == f"{name}.gt"
                assert span.line >= 1 and span.column >= 1
