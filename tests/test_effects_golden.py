"""Golden effect-summary snapshots for every example DSL program.

Each ``examples/*.gt`` file has a checked-in JSON snapshot of its
``repro analyze`` document under ``tests/goldens/effects/``.  The test
rebuilds the document from source and requires an exact match, so any
change to the effect analysis, monotonicity verdicts, fusion relation,
or runtime projection shows up as a reviewable golden diff.

Regenerate after an intentional analysis change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_effects_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.analyze import build_analysis_document

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens" / "effects"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.gt"))


def _document_for(example: Path) -> dict:
    document = build_analysis_document({example.stem: example.read_text()})
    # Round-trip through JSON so the comparison sees exactly what the
    # golden file stores (tuples become lists, keys become strings).
    return json.loads(json.dumps(document))


def test_examples_exist() -> None:
    assert EXAMPLES, f"no .gt examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_effect_summary_matches_golden(example: Path) -> None:
    golden_path = GOLDEN_DIR / f"{example.stem}.json"
    document = _document_for(example)
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with REPRO_REGEN_GOLDENS=1 "
        "to create it"
    )
    golden = json.loads(golden_path.read_text())
    assert document == golden, (
        f"effect summary for {example.name} drifted from its golden; "
        "if the change is intentional regenerate with REPRO_REGEN_GOLDENS=1"
    )


def test_no_stale_goldens() -> None:
    """Every golden corresponds to a live example (catches renames)."""
    stems = {p.stem for p in EXAMPLES}
    stale = [
        p.name for p in GOLDEN_DIR.glob("*.json") if p.stem not in stems
    ]
    assert not stale, f"goldens without a matching example: {stale}"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_golden_document_shape(example: Path) -> None:
    """Structural invariants every analysis document must satisfy."""
    document = _document_for(example)
    report = document["programs"][example.stem]
    assert set(report) == {
        "schedule", "effects", "runtime_summary", "incremental"
    }
    incremental = report["incremental"]
    assert incremental is not None
    assert isinstance(incremental["eligible"], bool)
    if incremental["eligible"]:
        assert incremental["kind"] in ("min", "max")
        assert not incremental["reasons"]
    else:
        assert incremental["reasons"]
    effects = report["effects"]
    assert effects["queues"], "every example declares a priority queue"
    for verdict in effects["monotonicity"]:
        assert verdict["verdict"] in (
            "monotone-decreasing",
            "monotone-increasing",
            "non-monotone",
        )
    for verdict in document["fusion"]:
        assert len(verdict["pair"]) == 2
        assert isinstance(verdict["fusable"], bool)
