"""Golden-source snapshots for the C++ backend.

``generate_cpp`` is deterministic, so the exact generated source for a
(program, inline schedule) pair is checked in under ``tests/goldens/cpp/``
and any codegen change shows up as a reviewable golden diff.  The two
pinned examples cover the backend's most schedule-sensitive shapes:

* ``kcore_peel.gt``    — lazy_constant_sum (histogram path, Figure 10),
* ``widest_path_eager.gt`` — higher_first eager (map-based order bins).

Regenerate after an intentional codegen change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_cpp_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.backend import compile_program

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens" / "cpp"
PINNED = ("kcore_peel", "widest_path_eager")


def _generate(stem: str) -> str:
    source = (EXAMPLES_DIR / f"{stem}.gt").read_text()
    # schedule=None: the example's own inline ``schedule:`` block applies.
    return compile_program(source, None, backend="cpp").source_text


@pytest.mark.parametrize("stem", PINNED)
def test_generated_cpp_matches_golden(stem: str) -> None:
    golden_path = GOLDEN_DIR / f"{stem}.cpp"
    text = _generate(stem)
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(text)
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with REPRO_REGEN_GOLDENS=1 "
        "to create it"
    )
    assert text == golden_path.read_text(), (
        f"generated C++ for {stem}.gt drifted from its golden; if the "
        "change is intentional regenerate with REPRO_REGEN_GOLDENS=1"
    )


@pytest.mark.parametrize("stem", PINNED)
def test_generation_is_deterministic(stem: str) -> None:
    assert _generate(stem) == _generate(stem)
