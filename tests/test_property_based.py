"""Property-based tests (hypothesis) on core invariants.

These cover the load-bearing equivalences of the paper's design:
lazy ≡ eager bucketing on arbitrary monotone update sequences, Δ-stepping ≡
Dijkstra for every strategy and Δ on random weighted graphs, the histogram
transform ≡ serialized clamped decrements, and structural invariants of the
substrate (partitioning, edge gathering, dedup).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import dijkstra_reference, kcore, kcore_reference, sssp
from repro.buckets import EagerBucketQueue, LazyBucketQueue
from repro.graph import GraphBuilder
from repro.graph.properties import INT_MAX
from repro.midend import Schedule
from repro.runtime import VirtualThreadPool, gather_out_edges
from repro.runtime.histogram import apply_constant_sum

pytestmark = pytest.mark.slow

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=1,
    max_size=60,
)


def build_graph(edges):
    builder = GraphBuilder(15)
    for source, dest, weight in edges:
        builder.add_edge(source, dest, weight)
    return builder.build(deduplicate="min", remove_self_loops=True)


# ----------------------------------------------------------------------
# Δ-stepping vs Dijkstra on random graphs
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    edges=edge_lists,
    delta=st.sampled_from([1, 2, 7, 64]),
    strategy=st.sampled_from(["lazy", "eager_no_fusion", "eager_with_fusion"]),
)
def test_sssp_equals_dijkstra(edges, delta, strategy):
    graph = build_graph(edges)
    reference = dijkstra_reference(graph, 0)
    result = sssp(
        graph, 0, Schedule(priority_update=strategy, delta=delta, num_threads=3)
    )
    assert np.array_equal(result.distances, reference)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_sssp_pull_equals_push(edges):
    graph = build_graph(edges)
    push = sssp(graph, 0, Schedule(priority_update="lazy", delta=4))
    pull = sssp(
        graph, 0, Schedule(priority_update="lazy", delta=4, direction="DensePull")
    )
    assert np.array_equal(push.distances, pull.distances)


# ----------------------------------------------------------------------
# k-core strategies agree with the peeling oracle
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    edges=edge_lists,
    strategy=st.sampled_from(["lazy_constant_sum", "lazy", "eager_no_fusion"]),
)
def test_kcore_equals_reference(edges, strategy):
    graph = build_graph(edges).symmetrized()
    reference = kcore_reference(graph)
    result = kcore(graph, Schedule(priority_update=strategy, num_threads=3))
    assert np.array_equal(result.coreness, reference)


# ----------------------------------------------------------------------
# Lazy vs eager queue equivalence on arbitrary min-update sequences
# ----------------------------------------------------------------------

update_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # vertex
        st.integers(min_value=0, max_value=80),  # proposed priority
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(updates=update_sequences, delta=st.sampled_from([1, 3, 8]))
def test_lazy_and_eager_agree_on_final_priorities(updates, delta):
    """Interleave updates with dequeues; both structures must finalize the
    same priorities and process vertices in non-decreasing bucket order."""

    def drive(queue_class, **kwargs):
        priorities = np.full(10, INT_MAX, dtype=np.int64)
        priorities[0] = 0
        queue = queue_class(priorities, delta=delta, initial_vertices=[0], **kwargs)
        orders = []
        pending = list(updates)
        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0 and not pending:
                break
            if bucket.size:
                orders.append(queue.current_order)
            # Apply a slice of updates "during" this round, at or above the
            # current bucket (the monotone regime of Δ-stepping).
            take, pending = pending[:5], pending[5:]
            floor_value = (
                queue.current_order * delta if queue.current_order is not None else 0
            )
            for vertex, proposed in take:
                queue.update_priority_min(vertex, max(proposed, floor_value))
            if bucket.size == 0 and queue.finished():
                break
        return priorities, orders

    lazy_priorities, lazy_orders = drive(LazyBucketQueue)
    eager_priorities, eager_orders = drive(EagerBucketQueue, num_threads=2)
    assert np.array_equal(lazy_priorities, eager_priorities)
    assert lazy_orders == sorted(lazy_orders)
    assert eager_orders == sorted(eager_orders)


# ----------------------------------------------------------------------
# Histogram transform equals serialized clamped decrements
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    targets=st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=30),
    floor=st.integers(min_value=0, max_value=10),
)
def test_histogram_equals_serialized_decrements(targets, floor):
    priorities = np.arange(10, 18, dtype=np.int64)
    expected = priorities.copy()
    for vertex in targets:
        expected[vertex] = max(expected[vertex] - 1, floor)

    actual = priorities.copy()
    if targets:
        vertices, counts = np.unique(
            np.array(targets, dtype=np.int64), return_counts=True
        )
        apply_constant_sum(actual, vertices, counts.astype(np.int64), -1, floor)
    assert np.array_equal(actual, expected)


# ----------------------------------------------------------------------
# Substrate invariants
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=300),
    threads=st.integers(min_value=1, max_value=9),
    chunk=st.integers(min_value=1, max_value=17),
    policy=st.sampled_from(
        ["static-vertex-parallel", "dynamic-vertex-parallel"]
    ),
)
def test_partition_is_a_partition(n, threads, chunk, policy):
    pool = VirtualThreadPool(threads, policy=policy, chunk_size=chunk)
    items = np.arange(n, dtype=np.int64)
    parts = pool.partition(items)
    assert len(parts) == threads
    merged = np.sort(np.concatenate(parts)) if parts else items
    assert np.array_equal(merged, items)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, frontier=st.lists(st.integers(0, 14), max_size=10))
def test_gather_matches_scalar_edges(edges, frontier):
    graph = build_graph(edges)
    frontier_arr = np.array(frontier, dtype=np.int64)
    sources, dests, weights = gather_out_edges(graph, frontier_arr)
    expected = [
        (v, u, w) for v in frontier for u, w in graph.out_edges(int(v))
    ]
    assert list(zip(sources.tolist(), dests.tolist(), weights.tolist())) == expected


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_symmetrize_is_idempotent(edges):
    graph = build_graph(edges).symmetrized()
    again = graph.symmetrized()
    assert np.array_equal(graph.indptr, again.indptr)
    assert np.array_equal(graph.indices, again.indices)
    assert np.array_equal(graph.weights, again.weights)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_reverse_preserves_edge_multiset(edges):
    graph = build_graph(edges)
    reverse = graph.reversed()
    forward = sorted(zip(*[a.tolist() for a in graph.edge_list()]))
    backward = sorted(
        (d, s, w) for s, d, w in zip(*[a.tolist() for a in reverse.edge_list()])
    )
    assert forward == backward
