"""Tests for the AST visitor/transformer infrastructure and small frontend
pieces the analyses are built on."""

import pytest

from repro.lang import ALL_PROGRAMS, parse
from repro.lang import ast_nodes as ast
from repro.lang.symbols import Scope
from repro.lang.types import INT, ElementType


class TestWalk:
    def test_walk_preorder(self):
        program = parse(ALL_PROGRAMS["sssp"])
        nodes = list(ast.walk(program))
        assert nodes[0] is program
        # Declarations come before their bodies' expressions.
        kinds = [type(n).__name__ for n in nodes]
        assert kinds.index("FuncDecl") < kinds.index("MethodCall")

    def test_walk_counts_every_update_call(self):
        program = parse(ALL_PROGRAMS["sssp"])
        updates = [
            node
            for node in ast.walk(program)
            if isinstance(node, ast.MethodCall)
            and node.method == "updatePriorityMin"
        ]
        assert len(updates) == 1


class TestNodeVisitor:
    def test_named_dispatch(self):
        class Counter(ast.NodeVisitor):
            def __init__(self):
                self.whiles = 0
                self.names = 0

            def visit_While(self, node):
                self.whiles += 1
                self.generic_visit(node)

            def visit_Name(self, node):
                self.names += 1

        counter = Counter()
        counter.visit(parse(ALL_PROGRAMS["sssp"]))
        assert counter.whiles == 1
        assert counter.names > 5

    def test_generic_visit_reaches_nested_statements(self):
        source = (
            "func main()\n"
            " var x : int = 0;\n"
            " while x < 3\n"
            "  if x < 1\n   x = x + 1;\n  end\n"
            " end\nend"
        )

        class Assigns(ast.NodeVisitor):
            def __init__(self):
                self.count = 0

            def visit_Assign(self, node):
                self.count += 1

        visitor = Assigns()
        visitor.visit(parse(source))
        assert visitor.count == 1


class TestNodeTransformer:
    def test_replace_literals(self):
        class Doubler(ast.NodeTransformer):
            def visit_IntLiteral(self, node):
                return ast.IntLiteral(node.value * 2, line=node.line)

        program = parse("func main()\n var x : int = 21;\nend")
        Doubler().visit(program)
        assert program.functions[0].body[0].initializer.value == 42

    def test_remove_statement_by_returning_none(self):
        class DropPrints(ast.NodeTransformer):
            def visit_Print(self, node):
                return None

        program = parse("func main()\n print 1;\n var x : int = 0;\nend")
        DropPrints().visit(program)
        body = program.functions[0].body
        assert len(body) == 1
        assert isinstance(body[0], ast.VarDecl)


class TestScope:
    def test_lookup_walks_parents(self):
        outer = Scope()
        outer.declare("x", INT)
        inner = Scope(outer)
        assert inner.lookup("x") == INT
        assert inner.lookup_local("x") is None
        inner.declare("x", ElementType("Vertex"))
        assert inner.lookup_local("x") == ElementType("Vertex")

    def test_lookup_missing(self):
        assert Scope().lookup("ghost") is None


class TestProgramAccessors:
    def test_function_and_constant_lookup(self):
        program = parse(ALL_PROGRAMS["sssp"])
        assert program.function("updateEdge").name == "updateEdge"
        assert program.function("ghost") is None
        assert program.constant("dist").name == "dist"
        assert program.constant("ghost") is None
