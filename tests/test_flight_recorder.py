"""The crash flight recorder: bounded ring, always-on spans, forensics.

The recorder is the tracer's always-on sibling: when no tracer is active,
the module-level ``obs.span``/``instant`` hooks feed a bounded ring instead
of returning the null span, and an escaping CLI error dumps that ring (plus
the exception and a metrics snapshot) to ``.repro/last_run.json`` for
``repro last-run`` to pretty-print.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs import flight


@pytest.fixture()
def recorder():
    """A fresh, small recorder installed for the duration of the test."""
    saved = flight.get_recorder()
    fresh = flight.FlightRecorder(capacity=16)
    flight.set_recorder(fresh)
    yield fresh
    flight.set_recorder(saved)


@pytest.fixture()
def state_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path))
    return tmp_path


class TestRing:
    def test_ring_is_bounded(self, recorder):
        for i in range(100):
            with obs.span("bucket.advance", "bucket", i=i):
                pass
        events = recorder.events()
        assert len(events) == 16  # capacity, not 100
        assert recorder.recorded == 100
        # The ring keeps the most recent spans.
        assert [e["args"]["i"] for e in events] == list(range(84, 100))

    def test_spans_recorded_with_tracing_off(self, recorder):
        assert obs.get_tracer() is None
        with obs.span("compile", "compiler", backend="python") as sp:
            sp["late"] = 7
        obs.instant("thread_name", "meta", label="tester")
        events = recorder.events()
        assert [e["ph"] for e in events] == ["X", "i"]
        assert events[0]["args"] == {"backend": "python", "late": 7}
        assert events[0]["dur_us"] >= 0

    def test_tracer_takes_precedence_over_recorder(self, recorder):
        with obs.tracing() as tracer:
            with obs.span("compile", "compiler"):
                pass
        assert any(e.get("name") == "compile" for e in tracer.events)
        assert recorder.events() == []  # traced spans don't hit the ring

    def test_escaping_exception_marked_and_not_swallowed(self, recorder):
        with pytest.raises(RuntimeError):
            with obs.span("bucket.reduce", "bucket"):
                raise RuntimeError("boom")
        (event,) = recorder.events()
        assert event["error"] == "RuntimeError"

    def test_args_coerced_to_json_safe(self, recorder):
        import numpy as np

        with obs.span("commit", "parallel", n=np.int64(3), path=object()):
            pass
        (event,) = recorder.events()
        assert event["args"]["n"] == 3
        assert isinstance(event["args"]["path"], str)
        json.dumps(event)  # the whole entry must serialize

    def test_note_run_context_attached(self, recorder):
        flight.note_run(argv=["sssp", "g.el"], delta=4)
        assert recorder.context() == {"argv": ["sssp", "g.el"], "delta": 4}


class TestForensicsDump:
    def test_dump_writes_schema_document(self, recorder, state_dir):
        with obs.span("bucket.advance", "bucket"):
            pass
        flight.note_run(argv=["x"])
        path = flight.dump_forensics(ValueError("bad delta"), argv=["run", "x"])
        assert path == str(state_dir / "last_run.json")
        document = json.loads((state_dir / "last_run.json").read_text())
        assert document["schema"] == flight.FORENSICS_SCHEMA
        assert document["error"]["type"] == "ValueError"
        assert document["error"]["message"] == "bad delta"
        assert "ValueError: bad delta" in document["error"]["traceback"]
        assert document["argv"] == ["run", "x"]
        assert document["context"] == {"argv": ["x"]}
        assert [e["name"] for e in document["events"]] == ["bucket.advance"]
        assert isinstance(document["metrics"], dict)

    def test_dump_disabled_recorder_returns_none(self, state_dir):
        saved = flight.set_recorder(None)
        try:
            assert not flight.flight_enabled()
            assert flight.dump_forensics(ValueError("x")) is None
            assert not os.path.exists(state_dir / "last_run.json")
        finally:
            flight.set_recorder(saved)

    def test_dump_never_raises_on_bad_state_dir(self, recorder, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR", "/proc/definitely/not/writable")
        assert flight.dump_forensics(ValueError("x")) is None


class TestCLI:
    def test_failed_run_dumps_and_last_run_reads(
        self, recorder, state_dir, capsys
    ):
        # A built-in program with a graph file that does not exist: the
        # loader's exception escapes the handler, so main() dumps the
        # flight recorder before re-raising.
        with pytest.raises(FileNotFoundError):
            main(["run", "sssp", str(state_dir / "missing.el"), "0"])
        err = capsys.readouterr().err
        assert "forensics written to" in err

        assert main(["last-run"]) == 0
        out = capsys.readouterr().out
        assert "FileNotFoundError" in out
        assert "missing.el" in out
        # The compile spans leading up to the failure are in the ring.
        assert "compiler:" in out

    def test_graphit_error_also_dumps(self, recorder, state_dir, capsys):
        assert main(["run", "definitely-not-a-program", "g.el"]) == 1
        captured = capsys.readouterr()
        assert "forensics written to" in captured.err
        document = json.loads((state_dir / "last_run.json").read_text())
        assert document["error"]["type"] == "GraphItError"

    def test_last_run_without_dump(self, state_dir, capsys):
        assert main(["last-run"]) == 1
        assert "no forensics dump" in capsys.readouterr().out

    def test_last_run_raw_is_valid_json(self, recorder, state_dir, capsys):
        flight.dump_forensics(ValueError("x"), argv=["y"])
        capsys.readouterr()
        assert main(["last-run", "--raw"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["error"]["type"] == "ValueError"
