"""Differential tests: the parallel execution engine vs the sequential oracle.

Every compiled program run under ``execution="parallel"`` (real
``concurrent.futures`` workers driving the produce/commit round protocol)
must be **bit-identical** to the scalar reference interpreter
(``vectorize=False``) run from the same inputs — output vectors AND every
deterministic ``RuntimeStats`` counter — for the deterministic strategies
(eager, eager+fusion, lazy, lazy-constant-sum).  The relaxed (Galois-style)
strategy commits in completion order, so only its *outputs* are pinned (the
algorithms it supports converge to a unique fixpoint); its work counters
are allowed to differ.

The matrix: six algorithms x the strategies each supports x {1, 2, 4, 8}
workers x weighted/unweighted inputs.  The oracle is recomputed at the same
``num_threads`` as the parallel run because partitioning (and therefore
per-round work accounting) follows the thread count.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.algorithms import ppsp, sssp
from repro.backend.program import compile_program
from repro.graph.generators import rmat, road_grid
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.schedule import Schedule

pytestmark = pytest.mark.slow

WORKERS = (1, 2, 4, 8)

# Stats fields that only the parallel engine populates; everything else must
# match the oracle exactly.
PARALLEL_ONLY = {
    "execution",
    "parallel_rounds",
    "barrier_waits",
    "barrier_wait_time",
    "worker_wall_time",
}


def deterministic_stats(stats) -> dict:
    dump = dataclasses.asdict(stats)
    dump.pop("_current_work", None)
    for key in PARALLEL_ONLY:
        dump.pop(key, None)
    return dump


# ----------------------------------------------------------------------
# Inputs (module-scoped: built once).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def weighted():
    return rmat(8, 8, seed=3, weights=(1, 4))


@pytest.fixture(scope="module")
def unweighted():
    return rmat(8, 8, seed=3, weights=None)


@pytest.fixture(scope="module")
def symmetric(unweighted):
    return unweighted.symmetrized()


@pytest.fixture(scope="module")
def road():
    return road_grid(12, 12, seed=5)


def _heuristic_extern(ctx, dst_vertex):
    coords = ctx.globals["edges"].coordinates
    h = ctx.globals["h"]
    d = np.abs(coords - coords[int(dst_vertex)]).sum(axis=1)
    h[:] = d.astype(np.int64)


# ----------------------------------------------------------------------
# Core differential driver.
# ----------------------------------------------------------------------


def run_pair(source, schedule, args, graph, externs=None):
    """Run the scalar oracle and the parallel engine from identical inputs."""
    oracle_prog = compile_program(source, schedule)
    oracle = oracle_prog.run(
        list(args), graph=graph, extern_functions=externs, vectorize=False
    )
    parallel_prog = compile_program(source, schedule.with_(execution="parallel"))
    parallel = parallel_prog.run(
        list(args), graph=graph, extern_functions=externs, vectorize=True
    )
    return oracle, parallel


def assert_bit_identical(oracle, parallel, workers):
    for name, value in oracle.globals.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, parallel.globals[name]), (
                f"vector {name} diverged at {workers} workers"
            )
    assert deterministic_stats(oracle.stats) == deterministic_stats(
        parallel.stats
    ), f"stats diverged at {workers} workers"
    # The engine's own profile must be coherent: one barrier per recorded
    # parallel round, and no parallel rounds at one worker (inline fallback).
    assert parallel.stats.execution == "parallel"
    assert parallel.stats.barrier_waits == parallel.stats.parallel_rounds
    if workers == 1:
        assert parallel.stats.parallel_rounds == 0


# (program, strategy, graph fixture, extra args, externs?) — six algorithms,
# each under every strategy its operators support.
CASES = [
    ("sssp", "lazy", "weighted", ["0"], None),
    ("sssp", "eager_no_fusion", "weighted", ["0"], None),
    ("sssp", "eager_with_fusion", "weighted", ["0"], None),
    ("sssp", "lazy", "unweighted", ["0"], None),
    ("ppsp", "lazy", "weighted", ["0", "99"], None),
    ("ppsp", "eager_with_fusion", "weighted", ["0", "99"], None),
    ("widest", "lazy", "weighted", ["0"], None),
    ("widest", "eager_no_fusion", "weighted", ["0"], None),
    ("wbfs", "lazy", "weighted", ["0"], None),
    ("wbfs", "eager_with_fusion", "unweighted", ["0"], None),
    ("kcore", "lazy", "symmetric", [], None),
    ("kcore", "lazy_constant_sum", "symmetric", [], None),
    ("kcore", "eager_no_fusion", "symmetric", [], None),
    ("astar", "lazy", "road", ["0", "100"], _heuristic_extern),
    ("astar", "eager_no_fusion", "road", ["0", "100"], _heuristic_extern),
]


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize(
    "program,strategy,graph_fixture,extra_args,extern",
    CASES,
    ids=[f"{c[0]}-{c[1]}-{c[2]}" for c in CASES],
)
def test_parallel_matches_oracle(
    program, strategy, graph_fixture, extra_args, extern, workers, request
):
    graph = request.getfixturevalue(graph_fixture)
    delta = 1 if program in ("kcore", "widest") else 3
    schedule = Schedule(
        priority_update=strategy, delta=delta, num_threads=workers
    )
    externs = {"computeHeuristic": extern} if extern else None
    oracle, parallel = run_pair(
        ALL_PROGRAMS[program],
        schedule,
        ["prog", "-", *extra_args],
        graph,
        externs=externs,
    )
    assert_bit_identical(oracle, parallel, workers)


# ----------------------------------------------------------------------
# Schedule sanitizer under the parallel engine: one representative config
# runs with ``sanitize=True`` on the parallel side.  The instrumented run
# must stay bit-identical to the oracle AND validate real apply scopes,
# proving the effect summaries hold for actual parallel executions.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", (1, 4))
def test_sanitized_parallel_matches_oracle(weighted, workers):
    schedule = Schedule(
        priority_update="eager_with_fusion", delta=3, num_threads=workers
    )
    oracle_prog = compile_program(ALL_PROGRAMS["sssp"], schedule)
    oracle = oracle_prog.run(
        ["prog", "-", "0"], graph=weighted, vectorize=False
    )
    sanitized_prog = compile_program(
        ALL_PROGRAMS["sssp"],
        schedule.with_(execution="parallel", sanitize=True),
    )
    sanitized = sanitized_prog.run(
        ["prog", "-", "0"], graph=weighted, vectorize=True
    )
    assert_bit_identical(oracle, sanitized, workers)
    sanitizer = sanitized.context.sanitizer
    assert sanitizer is not None
    assert len(sanitizer.log) > 0
    assert {entry["udf"] for entry in sanitizer.log} == {"updateEdge"}


# ----------------------------------------------------------------------
# Lazy stats invariant: the private per-worker update buffers (Figure 5)
# must not change round structure or relaxation totals.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", (2, 4, 8))
@pytest.mark.parametrize("strategy", ("lazy", "lazy_constant_sum"))
def test_lazy_round_and_relaxation_invariant(symmetric, strategy, workers):
    schedule = Schedule(priority_update=strategy, num_threads=workers)
    oracle, parallel = run_pair(
        ALL_PROGRAMS["kcore"], schedule, ["prog", "-"], symmetric
    )
    assert oracle.stats.rounds == parallel.stats.rounds
    assert oracle.stats.relaxations == parallel.stats.relaxations
    assert oracle.stats.buffer_appends == parallel.stats.buffer_appends
    assert oracle.stats.dedup_hits == parallel.stats.dedup_hits
    assert oracle.stats.buffer_reductions == parallel.stats.buffer_reductions
    if workers > 1:
        assert parallel.stats.parallel_rounds > 0


# ----------------------------------------------------------------------
# Relaxed (Galois-style) strategy: commits run in completion order under
# the engine lock, so stats may differ — but the supported algorithms
# converge to a unique fixpoint, which must match the oracle.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", (1, 2, 4, 8))
def test_relaxed_parallel_is_admissible_sssp(weighted, workers):
    reference = sssp(weighted, 0, Schedule(delta=3, num_threads=workers))
    relaxed = sssp(
        weighted,
        0,
        Schedule(delta=3, num_threads=workers, execution="parallel"),
        relaxed_ordering=True,
    )
    assert np.array_equal(relaxed.distances, reference.distances)
    assert relaxed.stats.execution == "parallel"


@pytest.mark.parametrize("workers", (2, 4))
def test_relaxed_parallel_is_admissible_ppsp(weighted, workers):
    reference = ppsp(weighted, 0, 99, Schedule(delta=3, num_threads=workers))
    relaxed = ppsp(
        weighted,
        0,
        99,
        Schedule(delta=3, num_threads=workers, execution="parallel"),
        relaxed_ordering=True,
    )
    # Point-to-point with relaxed ordering may do different amounts of
    # wasted work, but the target's distance is the unique shortest path.
    assert relaxed.distances[99] == reference.distances[99]
