"""Unit tests for the DSL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ALL_PROGRAMS, parse, tokenize
from repro.lang import ast_nodes as ast
from repro.lang.tokens import TokenKind
from repro.lang.types import (
    INT,
    EdgeSetType,
    ElementType,
    PriorityQueueType,
    VectorType,
    VertexSetType,
)


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("while whiles end endx")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.WHILE,
            TokenKind.IDENT,
            TokenKind.END,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("42 3.25")
        assert tokens[0].kind is TokenKind.INT and tokens[0].text == "42"
        assert tokens[1].kind is TokenKind.FLOAT and tokens[1].text == "3.25"

    def test_string_literal(self):
        tokens = tokenize('"lower_first"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "lower_first"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_two_char_operators(self):
        tokens = tokenize("-> == != <= >=")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [
            TokenKind.ARROW,
            TokenKind.EQ,
            TokenKind.NEQ,
            TokenKind.LE,
            TokenKind.GE,
        ]

    def test_label_tokens(self):
        tokens = tokenize("#s1#")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.HASH,
            TokenKind.IDENT,
            TokenKind.HASH,
        ]

    def test_line_comment(self):
        tokens = tokenize("a // comment here\nb")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "b"]

    def test_percent_comment_at_line_start(self):
        tokens = tokenize("% header comment\na")
        assert tokens[0].text == "a"

    def test_percent_modulo_mid_expression(self):
        tokens = tokenize("a % b")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENT,
            TokenKind.PERCENT,
            TokenKind.IDENT,
        ]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")


class TestParserDeclarations:
    def test_element(self):
        program = parse("element Vertex end")
        assert program.elements[0].name == "Vertex"

    def test_const_with_vector_type(self):
        program = parse(
            "element Vertex end\n"
            "const dist : vector{Vertex}(int) = INT_MAX;"
        )
        const = program.constants[0]
        assert const.declared_type == VectorType(ElementType("Vertex"), INT)
        assert isinstance(const.initializer, ast.Name)

    def test_edgeset_type(self):
        program = parse(
            "element Vertex end\nelement Edge end\n"
            "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);"
        )
        declared = program.constants[0].declared_type
        assert isinstance(declared, EdgeSetType)
        assert declared.is_weighted

    def test_unweighted_edgeset(self):
        program = parse(
            "element Vertex end\nelement Edge end\n"
            "const edges : edgeset{Edge}(Vertex, Vertex);"
        )
        assert not program.constants[0].declared_type.is_weighted

    def test_priority_queue_type(self):
        program = parse(
            "element Vertex end\nconst pq : priority_queue{Vertex}(int);"
        )
        assert isinstance(program.constants[0].declared_type, PriorityQueueType)

    def test_function_parameters(self):
        program = parse(
            "element Vertex end\n"
            "func f(src : Vertex, dst : Vertex, weight : int)\nend"
        )
        func = program.functions[0]
        assert [name for name, _ in func.parameters] == ["src", "dst", "weight"]

    def test_function_with_result(self):
        program = parse("func f(x : int) -> (out : int)\n out = x + 1;\nend")
        assert program.functions[0].result[0] == "out"

    def test_extern_declaration(self):
        program = parse("extern func computeHeuristic;")
        assert program.externs[0].name == "computeHeuristic"


class TestParserStatements:
    def _body(self, statements: str):
        program = parse(f"func main()\n{statements}\nend")
        return program.functions[0].body

    def test_var_decl(self):
        body = self._body("var x : int = 3;")
        assert isinstance(body[0], ast.VarDecl)
        assert body[0].initializer.value == 3

    def test_assignment_to_index(self):
        body = self._body("var x : int = 0;\ndist[x] = 5;")
        assert isinstance(body[1], ast.Assign)
        assert isinstance(body[1].target, ast.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            self._body("f(x) = 3;")

    def test_while_loop(self):
        body = self._body("while (x < 3)\n x = x + 1;\nend")
        assert isinstance(body[0], ast.While)
        assert len(body[0].body) == 1

    def test_if_else(self):
        body = self._body("if x < 3\n x = 1;\nelse\n x = 2;\nend")
        statement = body[0]
        assert isinstance(statement, ast.If)
        assert len(statement.then_body) == 1
        assert len(statement.else_body) == 1

    def test_elif_chain(self):
        body = self._body("if x < 1\n x = 1;\nelif x < 2\n x = 2;\nelse\n x = 3;\nend")
        outer = body[0]
        assert isinstance(outer.else_body[0], ast.If)

    def test_for_loop(self):
        body = self._body("for i in 0:10\n x = i;\nend")
        assert isinstance(body[0], ast.For)
        assert body[0].variable == "i"

    def test_label_attached(self):
        body = self._body("#s1# edges.from(b).applyUpdatePriority(f);")
        assert body[0].label == "s1"

    def test_delete(self):
        body = self._body("delete bucket;")
        assert isinstance(body[0], ast.Delete)

    def test_print(self):
        body = self._body("print x + 1;")
        assert isinstance(body[0], ast.Print)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self._body("var x : int = 3")


class TestParserExpressions:
    def _expr(self, text: str):
        program = parse(f"func main()\nvar r : int = {text};\nend")
        return program.functions[0].body[0].initializer

    def test_precedence_mul_over_add(self):
        expression = self._expr("1 + 2 * 3")
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_comparison_of_sums(self):
        expression = self._expr("a + 1 < b + 2")
        assert expression.operator == "<"

    def test_and_or_precedence(self):
        program = parse("func main()\nwhile a == 1 and b == 2 or c == 3\nend\nend")
        condition = program.functions[0].body[0].condition
        assert condition.operator == "or"
        assert condition.left.operator == "and"

    def test_unary_minus(self):
        expression = self._expr("-5")
        assert isinstance(expression, ast.UnaryOp)
        assert expression.operand.value == 5

    def test_method_chain(self):
        expression = self._expr("edges.from(bucket).applyUpdatePriority(f)")
        assert isinstance(expression, ast.MethodCall)
        assert expression.method == "applyUpdatePriority"
        assert expression.receiver.method == "from"

    def test_new_priority_queue_with_two_argument_lists(self):
        expression = self._expr(
            'new priority_queue{Vertex}(int)(true, "lower_first", dist, s)'
        )
        assert isinstance(expression, ast.New)
        assert isinstance(expression.type, PriorityQueueType)
        assert len(expression.arguments) == 4

    def test_index_chain(self):
        expression = self._expr("m[a][b]")
        assert isinstance(expression, ast.Index)
        assert isinstance(expression.base, ast.Index)

    def test_parenthesized(self):
        expression = self._expr("(1 + 2) * 3")
        assert expression.operator == "*"
        assert expression.left.operator == "+"


class TestScheduleBlock:
    def test_schedule_chain(self):
        program = parse(
            "func main()\nend\n"
            "schedule:\n"
            'program->configApplyPriorityUpdate("s1", "lazy")\n'
            '  ->configApplyPriorityUpdateDelta("s1", "4");\n'
        )
        assert [s.command for s in program.schedule] == [
            "configApplyPriorityUpdate",
            "configApplyPriorityUpdateDelta",
        ]
        assert program.schedule[0].arguments == ["s1", "lazy"]

    def test_multiple_program_chains(self):
        program = parse(
            "func main()\nend\n"
            "schedule:\n"
            'program->configApplyPriorityUpdate("s1", "lazy");\n'
            'program->configNumBuckets("s1", 64);\n'
        )
        assert len(program.schedule) == 2
        assert program.schedule[1].arguments == ["s1", "64"]


class TestPaperPrograms:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_all_programs_parse(self, name):
        program = parse(ALL_PROGRAMS[name])
        assert program.function("main") is not None

    def test_sssp_matches_figure3_shape(self):
        program = parse(ALL_PROGRAMS["sssp"])
        assert [e.name for e in program.elements] == ["Vertex", "Edge"]
        assert [c.name for c in program.constants] == ["edges", "dist", "pq"]
        update = program.function("updateEdge")
        assert update is not None
        assert len(update.parameters) == 3
