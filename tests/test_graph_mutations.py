"""Mutation API on loaded CSR graphs: overlay semantics, compaction, and
the stale-cache regression (degree memos + in-CSR must refresh on mutation).
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, Mutation, apply_mutations, from_edges
from repro.graph.mutations import mutation_endpoints, parse_mutation_script


def _triangle() -> CSRGraph:
    #  0 -> 1 (w=2), 1 -> 2 (w=3), 0 -> 2 (w=10)
    return from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 10)])


# ----------------------------------------------------------------------
# Point mutations through the overlay
# ----------------------------------------------------------------------


def test_add_edge_visible_before_compaction():
    g = _triangle()
    g.add_edge(2, 0, 7)
    assert g.num_edges == 4
    assert g.has_pending_mutations
    assert list(g.out_neighbors(2)) == [0]
    assert list(g.out_weights(2)) == [7]
    assert list(g.out_edges(2)) == [(0, 7)]
    assert g.out_degree(2) == 1


def test_add_edge_allows_parallel_copies():
    g = _triangle()
    g.add_edge(0, 1, 5)
    assert g.out_degree(0) == 3
    assert sorted(g.out_edges(0)) == [(1, 2), (1, 5), (2, 10)]


def test_remove_edge_removes_all_copies():
    g = _triangle()
    g.add_edge(0, 1, 5)  # second parallel copy, still in the overlay
    g.remove_edge(0, 1)
    assert g.out_degree(0) == 1
    assert list(g.out_edges(0)) == [(2, 10)]
    assert g.num_edges == 2


def test_remove_missing_edge_raises():
    g = _triangle()
    with pytest.raises(GraphError):
        g.remove_edge(2, 0)
    # Removing twice is also an error: the second call names a dead edge.
    g.remove_edge(0, 1)
    with pytest.raises(GraphError):
        g.remove_edge(0, 1)


def test_update_weight_hits_base_and_overlay_copies():
    g = _triangle()
    g.add_edge(0, 1, 5)
    g.update_weight(0, 1, 9)
    assert sorted(g.out_edges(0)) == [(1, 9), (1, 9), (2, 10)]


def test_update_weight_missing_edge_raises():
    g = _triangle()
    with pytest.raises(GraphError):
        g.update_weight(2, 1, 4)


def test_mutations_reject_out_of_range_vertices():
    g = _triangle()
    with pytest.raises(GraphError):
        g.add_edge(0, 3)
    with pytest.raises(GraphError):
        g.remove_edge(-1, 0)
    with pytest.raises(GraphError):
        g.update_weight(0, 99, 1)


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


def test_whole_array_read_compacts_lazily():
    g = _triangle()
    g.add_edge(2, 0, 7)
    g.remove_edge(0, 2)
    assert g.has_pending_mutations
    indptr = g.indptr  # forces compaction
    assert not g.has_pending_mutations
    assert list(indptr) == [0, 1, 2, 3]
    assert list(g.indices) == [1, 2, 0]
    assert list(g.weights) == [2, 3, 7]


def test_compaction_keeps_base_then_added_order_per_source():
    g = _triangle()
    g.add_edge(0, 0, 1)
    g.add_edge(0, 1, 8)
    # Base slots (1, 2) stay first in original order; overlay adds follow
    # in insertion order.
    assert list(zip(g.indices[:4], g.weights[:4])) == [(1, 2), (2, 10), (0, 1), (1, 8)]


def test_eager_compaction_past_threshold():
    from repro.graph.csr import COMPACTION_THRESHOLD

    n = 64
    g = from_edges(n, [(0, 1, 1)])
    rng = np.random.default_rng(0)
    for i in range(COMPACTION_THRESHOLD + 1):
        g.add_edge(int(rng.integers(n)), int(rng.integers(n)), 1)
    assert not g.has_pending_mutations  # compacted eagerly mid-stream
    assert g.num_edges == COMPACTION_THRESHOLD + 2


def test_batched_mutations_roundtrip_against_rebuild():
    rng = np.random.default_rng(7)
    n = 40
    edges = [(int(rng.integers(n)), int(rng.integers(n)), int(rng.integers(1, 9)))
             for _ in range(200)]
    g = from_edges(n, edges)
    adds = [(int(rng.integers(n)), int(rng.integers(n)), int(rng.integers(1, 9)))
            for _ in range(50)]
    g.add_edges(
        np.array([s for s, _, _ in adds]),
        np.array([d for _, d, _ in adds]),
        np.array([w for _, _, w in adds]),
    )
    expected = from_edges(n, edges + adds)
    assert g.num_edges == expected.num_edges
    for v in range(n):
        assert sorted(g.out_edges(v)) == sorted(expected.out_edges(v))


def test_weight_views_taken_before_mutation_are_stable():
    g = _triangle()
    before = g.weights
    snapshot = before.copy()
    g.update_weight(0, 1, 99)
    assert np.array_equal(before, snapshot)  # copy-on-first-write
    assert g.out_weights(0)[0] == 99


# ----------------------------------------------------------------------
# Satellite 3: stale caches must be invalidated on mutation
# ----------------------------------------------------------------------


def test_mutation_version_bumps_on_every_mutation():
    g = _triangle()
    v0 = g.mutation_version
    g.add_edge(2, 0, 1)
    g.update_weight(2, 0, 4)
    g.remove_edge(2, 0)
    assert g.mutation_version == v0 + 3


def test_out_degrees_memo_invalidated_on_mutation():
    g = _triangle()
    before = g.out_degrees()
    assert list(before) == [2, 1, 0]
    g.add_edge(2, 0, 7)
    after = g.out_degrees()
    assert list(after) == [2, 1, 1]
    g.remove_edge(0, 1)
    assert list(g.out_degrees()) == [1, 1, 1]


def test_in_degrees_and_in_csr_invalidated_on_mutation():
    g = _triangle()
    assert list(g.in_degrees()) == [0, 1, 2]
    assert list(g.in_neighbors(2)) == [0, 1]
    g.remove_edge(0, 2)
    assert list(g.in_degrees()) == [0, 1, 1]
    assert list(g.in_neighbors(2)) == [1]
    g.add_edge(2, 2, 1)
    assert g.in_degree(2) == 2
    assert list(g.in_weights(2)) == [3, 1]


def test_algorithms_see_post_mutation_graph_not_cached_state():
    # End-to-end flavour of the stale-cache gap: run once (populating every
    # memo), mutate, and re-run — the second run must see the new graph.
    from repro.algorithms.sssp import sssp
    from repro.midend.schedule import Schedule

    g = from_edges(4, [(0, 1, 5), (1, 2, 5), (2, 3, 5)])
    schedule = Schedule(priority_update="lazy", delta=2)
    first = sssp(g, 0, schedule=schedule)
    assert list(first.distances) == [0, 5, 10, 15]
    g.in_degrees()  # populate the remaining memo
    g.add_edge(0, 3, 1)
    second = sssp(g, 0, schedule=schedule)
    assert list(second.distances) == [0, 5, 10, 1]


# ----------------------------------------------------------------------
# Mutation batches and the script format
# ----------------------------------------------------------------------


def test_apply_mutations_symmetric_mirrors_edges():
    g = from_edges(3, [(0, 1, 1), (1, 0, 1)])
    applied = apply_mutations(
        g, [Mutation.add(1, 2, 4), Mutation.add(2, 2, 1)], symmetric=True
    )
    assert applied == 2
    assert sorted(g.out_edges(2)) == [(1, 4), (2, 1)]  # self-loop added once
    assert sorted(g.out_edges(1)) == [(0, 1), (2, 4)]
    assert g.is_symmetric()
    apply_mutations(g, [Mutation.remove(1, 2)], symmetric=True)
    assert g.is_symmetric()


def test_parse_mutation_script_batches_and_errors():
    batches = parse_mutation_script(
        """
        # warm-up batch
        add 0 1 5
        remove 2 3
        flush
        update 1 2 9
        add 4 5
        flush
        """
    )
    assert batches == [
        [Mutation.add(0, 1, 5), Mutation.remove(2, 3)],
        [Mutation.update(1, 2, 9), Mutation.add(4, 5, 1)],
    ]
    assert mutation_endpoints(batches[0]) == {0, 1, 2, 3}
    with pytest.raises(GraphError):
        parse_mutation_script("frobnicate 1 2")
    with pytest.raises(GraphError):
        parse_mutation_script("add 1")
    with pytest.raises(GraphError):
        parse_mutation_script("update 1 2")
    with pytest.raises(GraphError):
        parse_mutation_script("add one two")
