"""The query server over real sockets: routing, concurrency, correctness.

The load-bearing contract, from the acceptance criteria: **every** response
the service returns — under concurrent clients, cache hits, coalesced
joins, and interleaved ``/mutate`` invalidations — bit-matches a solo
oracle run of the same program on the current (post-mutation) graph.  The
matrix test here drives N client threads across (program × source ×
repeat) against a server that is mutated between phases, and checks every
returned vector against a freshly computed oracle for that epoch.

Also pinned: 429 + ``Retry-After`` on admission overflow (with the
accepted request still completing — never dropped), the ``/metrics``
endpoint sharing the single Prometheus exposition function, and handler
crashes landing in the flight recorder.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.backend.program import compile_program
from repro.graph.generators import rmat
from repro.graph.mutations import apply_mutations, parse_mutation_script
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.schedule import Schedule
from repro.serve import ServeClient, start_in_thread


def make_graph():
    return rmat(8, 16, seed=0, weights=(1, 4))


@pytest.fixture
def server():
    handle = start_in_thread(make_graph(), graph_name="rmat8")
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(server):
    with ServeClient(*server.address) as connection:
        yield connection


def oracle_vector(graph, program, source=None, target=None, schedule=None):
    knobs = dict(schedule or {})
    from dataclasses import replace

    compiled = compile_program(
        ALL_PROGRAMS[program], replace(Schedule(), **knobs)
    )
    argv = [program, "oracle"]
    if source is not None:
        argv.append(str(source))
    if target is not None:
        argv.append(str(target))
    result = compiled.run(argv, graph=graph)
    name = {"widest": "width", "kcore": "D"}.get(program, "dist")
    return result.globals[name]


class TestRouting:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["num_vertices"] == 256
        assert "sssp" in health["programs"]

    def test_query_get_and_post_agree(self, client, server):
        post = client.query("sssp", source=3, full=True).raise_for_status().json()
        get = (
            client.request("GET", "/query?program=sssp&source=3&full=1")
            .raise_for_status()
            .json()
        )
        assert get["values"] == post["values"]
        assert get["served"] == "cache"  # same traversal, second ask

    def test_unknown_route_404(self, client):
        assert client.request("GET", "/nope").status == 404

    def test_wrong_method_405(self, client):
        assert client.request("POST", "/healthz", body=b"{}").status == 405
        assert client.request("GET", "/mutate").status == 405

    def test_bad_query_400(self, client):
        assert client.query("pagerank", source=0).status == 400
        assert client.query("sssp").status == 400  # missing source
        assert client.query("sssp", source=10**9).status == 400
        bad_json = client.request("POST", "/query", body=b"{{{")
        assert bad_json.status == 400

    def test_out_of_range_vertex_400(self, client):
        assert client.query("sssp", source=0, vertex=4096).status == 400

    def test_point_read_defaults_to_target(self, client):
        document = client.query("ppsp", source=0, target=7).raise_for_status().json()
        assert document["vertex"] == 7
        oracle = oracle_vector(make_graph(), "ppsp", source=0, target=7)
        assert document["value"] == int(oracle[7])

    def test_mutate_json_body(self, client):
        summary = client.request(
            "POST", "/mutate", body=json.dumps({"script": "add 0 9 2"})
        ).raise_for_status().json()
        assert summary["epoch"] == 1
        assert summary["mutations"] == 1

    def test_mutate_empty_script_400(self, client):
        response = client.request(
            "POST", "/mutate", body=b"# nothing", content_type="text/plain"
        )
        assert response.status == 400


class TestMetricsEndpoint:
    def test_shares_the_single_exposition_function(self, client):
        from repro.obs.metrics import prometheus_text

        client.query("sssp", source=1).raise_for_status()
        served = client.metrics_text()
        local = prometheus_text()

        def stable(text):
            # The request-latency histogram advances with every exchange
            # (including the /metrics scrape itself); everything else must
            # be byte-identical between the endpoint and a direct call.
            return [
                line
                for line in text.splitlines()
                if "serve_latency_us" not in line
            ]

        assert stable(served) == stable(local)
        assert "# TYPE repro_serve_requests_total counter" in served

    def test_counters_reflect_traffic(self, client):
        client.query("sssp", source=2).raise_for_status()
        client.query("sssp", source=2).raise_for_status()
        text = client.metrics_text()
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if not line.startswith("#")
        )
        assert int(lines["repro_serve_requests_total"]) >= 2
        assert int(lines["repro_serve_cache_hits_total"]) >= 1


class TestBackpressure:
    def test_429_and_accepted_request_completes(self, server):
        engine = server.server.engine
        engine.max_pending = 1
        gate = threading.Event()
        original = engine._compute

        def slow_compute(spec):
            gate.wait(timeout=30)
            return original(spec)

        engine._compute = slow_compute
        results = {}

        def admitted():
            with ServeClient(*server.address) as connection:
                results["admitted"] = connection.query("sssp", source=1)

        worker = threading.Thread(target=admitted)
        worker.start()
        try:
            import time

            while engine._pending < 1:
                time.sleep(0.002)  # until the admitted query holds its slot
            with ServeClient(*server.address) as connection:
                rejected = connection.query("sssp", source=2)
            assert rejected.status == 429
            assert rejected.retry_after >= 1
            payload = rejected.json()
            assert payload["limit"] == 1
        finally:
            gate.set()
            worker.join(timeout=30)

        # The accepted request rode out the overflow and completed with
        # the right answer — accepted requests are never dropped.
        admitted_doc = results["admitted"].raise_for_status().json()
        oracle = oracle_vector(make_graph(), "sssp", source=1)
        assert admitted_doc["value"] == int(oracle[admitted_doc["vertex"]])

        # And once the queue drains, the rejected query succeeds on retry.
        with ServeClient(*server.address) as connection:
            assert connection.query("sssp", source=2).status == 200


class TestCrashForensics:
    def test_handler_crash_500_and_flight_dump(self, server, client):
        from repro.obs.flight import last_run_path

        engine = server.server.engine

        async def boom(spec):
            raise RuntimeError("synthetic handler crash")

        engine.query = boom
        response = client.query("sssp", source=0)
        assert response.status == 500
        assert "synthetic handler crash" in response.json()["error"]
        import os

        dump_path = last_run_path()
        assert os.path.exists(dump_path)
        with open(dump_path, "r", encoding="utf-8") as handle:
            dump = json.load(handle)
        assert dump["error"]["type"] == "RuntimeError"
        # The server stayed up: the connection still answers.
        assert client.healthz()["status"] == "ok"


MUTATION_SCRIPTS = [
    "add 0 9 2\nadd 9 17 1\nflush\nupdate 0 9 1",
    "remove 0 9\nadd 3 200 1\nadd 200 7 1",
]

QUERY_MATRIX = [
    ("sssp", 0, None, None),
    ("sssp", 3, None, {"priority_update": "lazy", "delta": 3}),
    ("wbfs", 3, None, None),
    ("widest", 0, None, None),
    ("ppsp", 0, 7, None),
    ("bellman_ford", 3, None, None),
    ("kcore", None, None, None),
]


class TestConcurrentCorrectness:
    @pytest.mark.slow
    def test_concurrent_matrix_bit_matches_oracle_across_mutations(self, server):
        """N clients × (query kinds × hit/miss × mutations) vs solo oracle."""
        clients = 6
        repeats = 2  # second pass per phase exercises the hit path
        collected: list[tuple[int, tuple, list[int]]] = []
        collected_lock = threading.Lock()
        errors: list[str] = []

        def worker(offset: int, phase_epoch: int):
            with ServeClient(*server.address) as connection:
                # Stagger the matrix per thread so misses, hits, and
                # coalesced joins all occur.
                order = (
                    QUERY_MATRIX[offset:] + QUERY_MATRIX[:offset]
                ) * repeats
                for program, source, target, schedule in order:
                    response = connection.query(
                        program,
                        source=source,
                        target=target,
                        schedule=schedule,
                        full=True,
                    )
                    if response.status != 200:
                        with collected_lock:
                            errors.append(
                                f"{program}/{source}: {response.status} "
                                f"{response.body!r}"
                            )
                        continue
                    document = response.json()
                    if document["epoch"] != phase_epoch:
                        with collected_lock:
                            errors.append(
                                f"{program}/{source}: epoch "
                                f"{document['epoch']} != {phase_epoch}"
                            )
                        continue
                    key = (program, source, target, _freeze(schedule))
                    with collected_lock:
                        collected.append((phase_epoch, key, document["values"]))

        oracle_graph = make_graph()
        oracle_graphs = {0: make_graph()}
        for epoch, script in enumerate(MUTATION_SCRIPTS, start=1):
            for batch in parse_mutation_script(script):
                apply_mutations(oracle_graph, batch)
            oracle_graphs[epoch] = rebuild(oracle_graph)

        for phase_epoch in range(len(MUTATION_SCRIPTS) + 1):
            threads = [
                threading.Thread(target=worker, args=(index, phase_epoch))
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if phase_epoch < len(MUTATION_SCRIPTS):
                with ServeClient(*server.address) as connection:
                    summary = connection.mutate(MUTATION_SCRIPTS[phase_epoch])
                assert summary["epoch"] == phase_epoch + 1

        assert not errors, errors[:5]
        expected_responses = clients * repeats * len(QUERY_MATRIX) * (
            len(MUTATION_SCRIPTS) + 1
        )
        assert len(collected) == expected_responses

        oracle_cache: dict[tuple, np.ndarray] = {}
        for phase_epoch, key, values in collected:
            program, source, target, schedule = key
            cache_key = (phase_epoch, key)
            if cache_key not in oracle_cache:
                oracle_cache[cache_key] = oracle_vector(
                    oracle_graphs[phase_epoch],
                    program,
                    source=source,
                    target=target,
                    schedule=dict(schedule) if schedule else None,
                )
            assert np.array_equal(
                np.asarray(values, dtype=np.int64), oracle_cache[cache_key]
            ), f"epoch {phase_epoch} {key} diverged from the solo oracle"


def _freeze(schedule):
    return tuple(sorted(schedule.items())) if schedule else None


def rebuild(graph):
    """An independent compacted copy of the oracle graph's current state."""
    from repro.graph.csr import CSRGraph

    return CSRGraph(
        graph.indptr.copy(), graph.indices.copy(), graph.weights.copy()
    )
