"""Correctness and behaviour tests for the Δ-stepping family (direct API)."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHABLE,
    astar,
    bellman_ford,
    dijkstra_reference,
    euclidean_heuristic,
    ppsp,
    sssp,
    wbfs,
)
from repro.errors import GraphError, SchedulingError
from repro.graph import assign_log_weights, from_edges, path_graph, rmat, road_grid
from repro.midend import Schedule

STRATEGIES = ["lazy", "eager_no_fusion", "eager_with_fusion"]


@pytest.fixture(scope="module")
def social():
    graph = rmat(10, 16, seed=3)
    source = int(np.argmax(graph.out_degrees()))
    return graph, source, dijkstra_reference(graph, source)


@pytest.fixture(scope="module")
def road():
    graph = road_grid(22, 24, seed=4)
    return graph, dijkstra_reference(graph, 0)


class TestSSSP:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("delta", [1, 16, 512])
    def test_matches_dijkstra_social(self, social, strategy, delta):
        graph, source, reference = social
        result = sssp(
            graph,
            source,
            Schedule(priority_update=strategy, delta=delta, num_threads=4),
        )
        assert np.array_equal(result.distances, reference)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_dijkstra_road(self, road, strategy):
        graph, reference = road
        result = sssp(
            graph, 0, Schedule(priority_update=strategy, delta=1024, num_threads=4)
        )
        assert np.array_equal(result.distances, reference)

    def test_densepull_matches(self, social):
        graph, source, reference = social
        result = sssp(
            graph,
            source,
            Schedule(
                priority_update="lazy", delta=16, direction="DensePull", num_threads=4
            ),
        )
        assert np.array_equal(result.distances, reference)
        # Pull direction needs no atomics (Figure 9(b)).
        assert result.stats.atomic_ops == 0

    def test_relaxed_ordering_matches(self, social):
        graph, source, reference = social
        result = sssp(
            graph, source, Schedule(delta=16, num_threads=4), relaxed_ordering=True
        )
        assert np.array_equal(result.distances, reference)

    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_thread_counts_agree(self, social, threads):
        graph, source, reference = social
        result = sssp(
            graph,
            source,
            Schedule(
                priority_update="eager_with_fusion", delta=16, num_threads=threads
            ),
        )
        assert np.array_equal(result.distances, reference)

    def test_unreachable_vertices(self):
        graph = from_edges(4, [(0, 1, 5)])
        result = sssp(graph, 0, Schedule(delta=4))
        assert result.distances.tolist() == [0, 5, UNREACHABLE, UNREACHABLE]
        assert result.reachable().tolist() == [True, True, False, False]

    def test_single_vertex(self):
        graph = from_edges(1, [])
        result = sssp(graph, 0)
        assert result.distances.tolist() == [0]

    def test_source_out_of_range(self, social):
        graph, _, _ = social
        with pytest.raises(GraphError):
            sssp(graph, graph.num_vertices)

    def test_histogram_schedule_rejected(self, social):
        graph, source, _ = social
        with pytest.raises(SchedulingError):
            sssp(graph, source, Schedule(priority_update="lazy_constant_sum"))

    def test_fusion_reduces_rounds_on_road(self, road):
        graph, _ = road
        fused = sssp(
            graph,
            0,
            Schedule(priority_update="eager_with_fusion", delta=1024, num_threads=4),
        )
        plain = sssp(
            graph,
            0,
            Schedule(priority_update="eager_no_fusion", delta=1024, num_threads=4),
        )
        assert fused.stats.rounds < plain.stats.rounds
        assert fused.stats.fused_rounds > 0
        assert fused.stats.global_syncs < plain.stats.global_syncs

    def test_lazy_pays_two_syncs_per_round(self, social):
        graph, source, _ = social
        lazy = sssp(graph, source, Schedule(priority_update="lazy", delta=16))
        eager = sssp(graph, source, Schedule(priority_update="eager_no_fusion", delta=16))
        assert lazy.stats.global_syncs == 2 * lazy.stats.rounds
        assert eager.stats.global_syncs == eager.stats.rounds

    def test_lazy_dedups_bucket_insertions(self, social):
        graph, source, _ = social
        lazy = sssp(graph, source, Schedule(priority_update="lazy", delta=64))
        eager = sssp(
            graph, source, Schedule(priority_update="eager_no_fusion", delta=64)
        )
        # Eager pays one insertion per priority improvement; lazy one per
        # vertex per round (the Section 3 tradeoff).
        assert lazy.stats.bucket_inserts <= eager.stats.bucket_inserts

    def test_delta_one_equals_larger_delta_distances(self, road):
        graph, reference = road
        for delta in (1, 64, 4096):
            result = sssp(graph, 0, Schedule(delta=delta, num_threads=2))
            assert np.array_equal(result.distances, reference)


class TestWBFS:
    def test_matches_dijkstra_on_log_weights(self):
        graph = assign_log_weights(rmat(9, 12, seed=7), seed=1)
        source = int(np.argmax(graph.out_degrees()))
        reference = dijkstra_reference(graph, source)
        for strategy in STRATEGIES:
            result = wbfs(graph, source, Schedule(priority_update=strategy, delta=1))
            assert np.array_equal(result.distances, reference), strategy

    def test_delta_must_be_one(self):
        graph = path_graph(4)
        with pytest.raises(SchedulingError):
            wbfs(graph, 0, Schedule(delta=4))


class TestPPSP:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_exact_target_distance(self, road, strategy):
        graph, reference = road
        target = graph.num_vertices - 1
        result = ppsp(
            graph,
            0,
            target,
            Schedule(priority_update=strategy, delta=1024, num_threads=4),
        )
        assert result.target_distance == reference[target]

    def test_early_exit_does_less_work(self, road):
        graph, _ = road
        target = graph.num_vertices // 4
        schedule = Schedule(priority_update="eager_with_fusion", delta=1024)
        full = sssp(graph, 0, schedule)
        early = ppsp(graph, 0, target, schedule)
        assert early.stats.relaxations < full.stats.relaxations

    def test_unreachable_target(self):
        graph = from_edges(3, [(0, 1, 1)])
        result = ppsp(graph, 0, 2, Schedule(delta=2))
        assert result.target_distance == UNREACHABLE

    def test_target_required_in_range(self, road):
        graph, _ = road
        with pytest.raises(GraphError):
            ppsp(graph, 0, graph.num_vertices)


class TestAStar:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_exact_path_length(self, road, strategy):
        graph, reference = road
        target = graph.num_vertices - 1
        result = astar(
            graph,
            0,
            target,
            Schedule(priority_update=strategy, delta=1024, num_threads=4),
        )
        assert result.target_distance == reference[target]

    def test_heuristic_prunes_work(self, road):
        # The heuristic only has traction when Δ is small relative to the
        # f-value spread; with a huge Δ everything shares one bucket and A*
        # can do *more* work than PPSP (the paper notes A* is "sometimes
        # slower than PPSP").  At a fine Δ it must prune.
        graph, _ = road
        target = graph.num_vertices - 1
        schedule = Schedule(priority_update="eager_with_fusion", delta=64)
        plain = ppsp(graph, 0, target, schedule)
        informed = astar(graph, 0, target, schedule)
        assert informed.stats.relaxations < plain.stats.relaxations
        assert informed.stats.vertices_processed < plain.stats.vertices_processed

    def test_heuristic_is_admissible(self, road):
        graph, reference = road
        target = graph.num_vertices - 1
        heuristic = euclidean_heuristic(graph, target)
        reachable = reference != UNREACHABLE
        # h(v) <= true remaining distance for all v on shortest paths from 0.
        back = dijkstra_reference(graph.reversed(), target)
        ok = back != UNREACHABLE
        assert np.all(heuristic[ok] <= back[ok])
        assert heuristic[target] == 0
        assert reachable[target]

    def test_requires_coordinates(self):
        graph = path_graph(4)
        with pytest.raises(GraphError):
            astar(graph, 0, 3)

    def test_custom_heuristic(self, road):
        graph, reference = road
        target = graph.num_vertices - 1
        zero = np.zeros(graph.num_vertices, dtype=np.int64)
        result = astar(graph, 0, target, Schedule(delta=1024), heuristic=zero)
        assert result.target_distance == reference[target]


class TestBellmanFord:
    def test_matches_dijkstra(self, social):
        graph, source, reference = social
        result = bellman_ford(graph, source, num_threads=4)
        assert np.array_equal(result.distances, reference)

    def test_no_early_exit_with_target(self, road):
        graph, reference = road
        target = graph.num_vertices // 4
        result = bellman_ford(graph, 0, target=target)
        # Unordered PPSP costs the same as full SSSP (Table 4's pattern).
        assert np.array_equal(result.distances, reference)

    def test_more_relaxations_than_ordered(self, road):
        # Table 4's pattern: unordered Bellman-Ford does more work than
        # ordered delta-stepping — with a road-appropriate delta.  An
        # over-wide delta (e.g. 1024 here) collapses the road graph into one
        # mega-bucket and forfeits the ordering benefit (the paper's delta
        # sensitivity, Fig. 12); since small frontiers now really spread
        # across the thread pool, that regime's cross-thread redundant
        # relaxations are simulated faithfully and the inequality would not
        # (and should not) hold there.
        graph, _ = road
        unordered = bellman_ford(graph, 0, num_threads=4)
        ordered = sssp(
            graph,
            0,
            Schedule(priority_update="eager_with_fusion", delta=64, num_threads=4),
        )
        assert unordered.stats.relaxations > ordered.stats.relaxations
        # Single-threaded, the ordering benefit holds even at delta=1024.
        unordered_1t = bellman_ford(graph, 0, num_threads=1)
        ordered_1t = sssp(
            graph,
            0,
            Schedule(priority_update="eager_with_fusion", delta=1024, num_threads=1),
        )
        assert unordered_1t.stats.relaxations > ordered_1t.stats.relaxations
