"""Unit tests for the midend: analyses, transforms, schedule planning."""

import pytest

from repro.errors import CompileError, SchedulingError
from repro.lang import ALL_PROGRAMS, parse
from repro.lang import ast_nodes as ast
from repro.midend import Schedule, SchedulingProgram
from repro.midend.analysis import (
    analyze_constant_sum,
    analyze_dependences,
    find_priority_updates,
    recognize_ordered_loop,
)
from repro.midend.transforms import (
    build_transformed_udf,
    plan_program,
    schedule_from_block,
)


def _program(name: str) -> ast.Program:
    return parse(ALL_PROGRAMS[name])


class TestScheduleObject:
    def test_defaults_valid(self):
        Schedule()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(priority_update="eager_maybe")

    def test_eager_with_densepull_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(priority_update="eager_no_fusion", direction="DensePull")

    def test_lazy_with_densepull_allowed(self):
        Schedule(priority_update="lazy", direction="DensePull")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("delta", 0),
            ("num_buckets", 0),
            ("bucket_fusion_threshold", 0),
            ("num_threads", 0),
            ("chunk_size", 0),
        ],
    )
    def test_positive_parameters(self, field, value):
        with pytest.raises(SchedulingError):
            Schedule(**{field: value})

    def test_with_validates(self):
        schedule = Schedule(priority_update="lazy", direction="DensePull")
        with pytest.raises(SchedulingError):
            schedule.with_(priority_update="eager_no_fusion")

    def test_flags(self):
        assert Schedule(priority_update="eager_with_fusion").uses_fusion
        assert Schedule(priority_update="lazy_constant_sum").uses_histogram
        assert Schedule(priority_update="lazy").is_lazy
        assert Schedule(priority_update="eager_no_fusion").is_eager


class TestSchedulingProgram:
    def test_fluent_chain(self):
        program = (
            SchedulingProgram()
            .config_apply_priority_update("s1", "lazy")
            .config_apply_priority_update_delta("s1", 4)
            .config_num_buckets("s1", 64)
        )
        schedule = program.schedule_for("s1")
        assert schedule.priority_update == "lazy"
        assert schedule.delta == 4
        assert schedule.num_buckets == 64

    def test_camelcase_aliases(self):
        program = SchedulingProgram().configApplyPriorityUpdate("s1", "lazy")
        assert program.schedule_for("s1").priority_update == "lazy"

    def test_unconfigured_label_gets_default(self):
        assert SchedulingProgram().schedule_for("s9") == Schedule()

    def test_string_int_parsing(self):
        program = SchedulingProgram().config_apply_priority_update_delta("s1", "16")
        assert program.schedule_for("s1").delta == 16
        with pytest.raises(SchedulingError):
            SchedulingProgram().config_apply_priority_update_delta("s1", "four")

    def test_empty_label_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulingProgram().config_apply_priority_update("", "lazy")

    def test_remaining_commands(self):
        program = (
            SchedulingProgram()
            .config_apply_priority_update("s1", "lazy")
            .config_apply_direction("s1", "DensePull")
            .config_apply_parallelization("s1", "static-vertex-parallel")
            .config_bucket_fusion_threshold("s1", 256)
            .config_num_threads("s1", 12)
        )
        schedule = program.schedule_for("s1")
        assert schedule.direction == "DensePull"
        assert schedule.parallelization == "static-vertex-parallel"
        assert schedule.bucket_fusion_threshold == 256
        assert schedule.num_threads == 12
        assert program.labels == ("s1",)


class TestLoopRecognition:
    def test_sssp_plain_loop(self):
        program = _program("sssp")
        info = recognize_ordered_loop(program.function("main"), {"pq"})
        assert info is not None
        assert info.bucket_name == "bucket"
        assert info.udf_name == "updateEdge"
        assert info.edgeset_name == "edges"
        assert info.label == "s1"
        assert info.stop_condition is None
        assert info.eager_eligible

    def test_ppsp_early_exit_loop(self):
        program = _program("ppsp")
        info = recognize_ordered_loop(program.function("main"), {"pq"})
        assert info is not None
        assert info.stop_condition is not None
        assert info.done_variable == "done"

    def test_setcover_extern_loop(self):
        program = _program("setcover")
        info = recognize_ordered_loop(program.function("main"), {"pq"})
        assert info is not None
        assert info.extern_processor == "processBucket"
        assert not info.eager_eligible

    def test_bucket_used_elsewhere_blocks_recognition(self):
        source = ALL_PROGRAMS["sssp"].replace(
            "delete bucket;",
            "var n : int = bucket.getVertexSetSize();\n        delete bucket;",
        )
        program = parse(source)
        info = recognize_ordered_loop(program.function("main"), {"pq"})
        assert info is None

    def test_non_matching_loop_ignored(self):
        program = parse(
            "element Vertex end\nconst pq : priority_queue{Vertex}(int);\n"
            "func main()\n var x : int = 0;\n while x < 3\n x = x + 1;\n end\nend"
        )
        assert recognize_ordered_loop(program.function("main"), {"pq"}) is None


class TestUdfAnalysis:
    def test_find_min_update(self):
        program = _program("sssp")
        updates = find_priority_updates(program.function("updateEdge"), {"pq"})
        assert len(updates) == 1
        assert updates[0].op == "min"
        assert isinstance(updates[0].vertex_arg, ast.Name)
        assert updates[0].vertex_arg.identifier == "dst"

    def test_three_argument_form_preserves_old_value(self):
        program = _program("sssp")
        update = find_priority_updates(program.function("updateEdge"), {"pq"})[0]
        # Figure 3 passes (dst, dist[dst], new_dist); the value is the last,
        # and the old-value read is preserved so the race analysis can seed
        # the CAS loop from it instead of an extra atomic load.
        assert isinstance(update.value_arg, ast.Name)
        assert update.value_arg.identifier == "new_dist"
        assert update.has_old_value
        assert isinstance(update.old_arg, ast.Index)
        assert update.old_arg.base.identifier == "dist"

    def test_two_argument_form_has_no_old_value(self):
        source = ALL_PROGRAMS["sssp"].replace(
            "pq.updatePriorityMin(dst, dist[dst], new_dist);",
            "pq.updatePriorityMin(dst, new_dist);",
        )
        program = parse(source)
        update = find_priority_updates(program.function("updateEdge"), {"pq"})[0]
        assert update.op == "min"
        assert not update.has_old_value
        assert update.old_arg is None

    def test_constant_sum_detected_for_kcore(self):
        program = _program("kcore")
        info = analyze_constant_sum(program.function("apply_f"), {"pq"})
        assert info is not None
        assert info.constant == -1
        assert info.vertex_param == "dst"
        assert info.threshold_is_current_priority

    def test_constant_sum_rejected_for_min_udf(self):
        program = _program("sssp")
        assert analyze_constant_sum(program.function("updateEdge"), {"pq"}) is None

    def test_constant_sum_requires_literal_difference(self):
        source = ALL_PROGRAMS["kcore"].replace(
            "pq.updatePrioritySum(dst, -1, k);",
            "var d : int = 0 - 1;\n    pq.updatePrioritySum(dst, d, k);",
        )
        program = parse(source)
        assert analyze_constant_sum(program.function("apply_f"), {"pq"}) is None


class TestDependenceAnalysis:
    def test_push_needs_atomics(self):
        program = _program("sssp")
        info = analyze_dependences(program.function("updateEdge"), {"pq"})
        assert info.needs_atomics
        assert not info.needs_deduplication

    def test_pull_needs_no_atomics(self):
        program = _program("sssp")
        info = analyze_dependences(
            program.function("updateEdge"), {"pq"}, direction="DensePull"
        )
        assert not info.needs_atomics

    def test_kcore_needs_dedup(self):
        program = _program("kcore")
        info = analyze_dependences(program.function("apply_f"), {"pq"})
        assert info.needs_deduplication

    def test_direct_vector_write_counts(self):
        program = _program("astar")
        info = analyze_dependences(program.function("updateEdge"), {"pq"})
        assert "dist" in info.destination_writes


class TestHistogramTransform:
    def test_transformed_shape_matches_figure10(self):
        program = _program("kcore")
        info = analyze_constant_sum(program.function("apply_f"), {"pq"})
        transformed = build_transformed_udf(program.function("apply_f"), info)
        assert transformed.name == "apply_f_transformed"
        assert [name for name, _ in transformed.parameters] == ["vertex", "count"]
        # Body: k read, priority read, guarded clamp-update-return.
        assert isinstance(transformed.body[0], ast.VarDecl)
        assert transformed.body[0].name == "k"
        guard = transformed.body[2]
        assert isinstance(guard, ast.If)
        assert guard.condition.operator == ">"
        clamp = guard.then_body[0].initializer
        assert isinstance(clamp, ast.Call) and clamp.function == "max"
        assert isinstance(guard.then_body[-1], ast.Return)


class TestPlanProgram:
    def test_sssp_plan_lazy(self):
        plan = plan_program(_program("sssp"), Schedule(priority_update="lazy"))
        assert plan.schedule.is_lazy
        assert plan.dependence.needs_atomics
        assert plan.transformed_udf is None

    def test_kcore_plan_histogram(self):
        plan = plan_program(
            _program("kcore"), Schedule(priority_update="lazy_constant_sum")
        )
        assert plan.transformed_udf is not None

    def test_histogram_on_min_udf_rejected(self):
        with pytest.raises(CompileError):
            plan_program(
                _program("sssp"), Schedule(priority_update="lazy_constant_sum")
            )

    def test_eager_on_extern_loop_rejected(self):
        with pytest.raises(CompileError):
            plan_program(
                _program("setcover"), Schedule(priority_update="eager_no_fusion")
            )

    def test_queue_less_program_plans_as_unordered(self):
        plan = plan_program(
            parse("func main()\nend"), Schedule(priority_update="lazy")
        )
        assert plan.queue_names == set()
        assert plan.loop is None

    def test_queue_less_program_ignores_strategy(self):
        plan = plan_program(
            parse("func main()\nend"),
            Schedule(priority_update="eager_no_fusion"),
        )
        assert plan.loop is None

    def test_queued_program_with_unrecognized_loop_rejects_eager(self):
        source = (
            "element Vertex end\n"
            "const pq : priority_queue{Vertex}(int);\n"
            "func main()\n var x : int = 0;\nend"
        )
        with pytest.raises(CompileError):
            plan_program(parse(source), Schedule(priority_update="eager_no_fusion"))

    def test_program_without_main_rejected(self):
        with pytest.raises(CompileError):
            plan_program(
                parse("element Vertex end\nconst pq : priority_queue{Vertex}(int);")
            )

    def test_inline_schedule_block_used(self):
        source = (
            ALL_PROGRAMS["sssp"]
            + "\nschedule:\n"
            + 'program->configApplyPriorityUpdate("s1", "lazy")\n'
            + '  ->configApplyPriorityUpdateDelta("s1", "32");\n'
        )
        plan = plan_program(parse(source))
        assert plan.schedule.priority_update == "lazy"
        assert plan.schedule.delta == 32

    def test_explicit_schedule_overrides_block(self):
        source = (
            ALL_PROGRAMS["sssp"]
            + "\nschedule:\n"
            + 'program->configApplyPriorityUpdate("s1", "lazy");\n'
        )
        plan = plan_program(
            parse(source), Schedule(priority_update="eager_no_fusion")
        )
        assert plan.schedule.is_eager

    def test_scheduling_program_by_label(self):
        scheduling = SchedulingProgram().config_apply_priority_update("s1", "lazy")
        plan = plan_program(_program("sssp"), scheduling)
        assert plan.schedule.is_lazy

    def test_schedule_from_block_unknown_command(self):
        source = (
            "func main()\nend\nschedule:\n"
            'program->configMagic("s1", "on");\n'
        )
        with pytest.raises(SchedulingError):
            schedule_from_block(parse(source))
