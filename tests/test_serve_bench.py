"""The closed-loop load-test harness: determinism, percentiles, floors.

``bench-check`` compares ``unique_sources`` / ``responses_ok`` across
machines **exactly**, so the Zipf source draw must be bit-stable across
numpy versions and platforms — pinned here along with the percentile
helper and the floor checker the CI gate runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.bench import (
    FLOORS,
    check_floors,
    percentile,
    run_serve_bench,
    zipf_ranks,
)


class TestZipfDraw:
    def test_deterministic_for_a_seed(self):
        a = zipf_ranks(np.random.default_rng(7), 500, 24, 1.2)
        b = zipf_ranks(np.random.default_rng(7), 500, 24, 1.2)
        assert a == b

    def test_ranks_stay_in_pool(self):
        ranks = zipf_ranks(np.random.default_rng(0), 1000, 16, 1.2)
        assert min(ranks) >= 0 and max(ranks) < 16

    def test_distribution_is_skewed_head_heavy(self):
        ranks = zipf_ranks(np.random.default_rng(0), 5000, 24, 1.2)
        counts = np.bincount(ranks, minlength=24)
        assert counts[0] == max(counts)  # rank 0 is the hottest
        assert counts[0] > 3 * counts[-1]  # real skew, not uniform


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_sample(self):
        assert percentile([42.0], 0.5) == 42.0
        assert percentile([42.0], 0.99) == 42.0

    def test_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.50) == 51.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0

    def test_order_independent(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        assert percentile(samples, 0.5) == percentile(sorted(samples), 0.5)


class TestFloors:
    BASE = {
        "throughput_qps": 500.0,
        "p95_ms": 20.0,
        "cached_p95_ms": 1.0,
        "floors": dict(FLOORS),
    }

    def test_within_budget_no_problems(self):
        assert check_floors(dict(self.BASE)) == []

    def test_each_violation_reported(self):
        record = dict(self.BASE)
        record["throughput_qps"] = 10.0
        record["p95_ms"] = 500.0
        record["cached_p95_ms"] = 50.0
        problems = check_floors(record)
        assert len(problems) == 3
        assert any("throughput" in problem for problem in problems)
        assert any("p95" in problem for problem in problems)
        assert any("cached-hit" in problem for problem in problems)


class TestHarness:
    @pytest.mark.slow
    def test_small_run_end_to_end(self):
        record = run_serve_bench(
            scale=7,
            clients=3,
            requests=6,
            pool_size=6,
            cached_requests=10,
        )
        assert record["total_requests"] == 18
        assert record["responses_ok"] == 18  # budget never overflowed
        assert 0 < record["unique_sources"] <= 6
        assert record["throughput_qps"] > 0
        assert record["p95_ms"] > 0
        assert record["cached_p95_ms"] > 0
        served = record["served"]
        assert sum(served.values()) == 18
        assert served.get("computed", 0) >= 1  # the cold traversals ran
        assert served.get("cache", 0) >= 1  # and the hot sources hit
        # The record is self-describing for bench-check's fresh re-run.
        for key in ("graph", "clients", "requests_per_client", "pool_size",
                    "zipf_s", "cached_requests", "max_pending", "floors"):
            assert key in record

    @pytest.mark.slow
    def test_identical_seeds_identical_deterministic_counters(self):
        first = run_serve_bench(scale=7, clients=2, requests=8, pool_size=8,
                                cached_requests=5)
        second = run_serve_bench(scale=7, clients=2, requests=8, pool_size=8,
                                 cached_requests=5)
        for key in ("total_requests", "responses_ok", "unique_sources"):
            assert first[key] == second[key]
