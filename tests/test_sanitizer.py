"""Tests for the runtime schedule sanitizer.

The sanitizer validates real executions against the static effect
summaries the midend proved.  Three layers are covered here:

- unit behavior of :class:`SanitizedVector` (instrumentation propagates
  to true views only) and the scope protocol's four rules,
- a differential check that ``Schedule(sanitize=True)`` is bit-identical
  to uninstrumented execution across strategies and both dispatch modes,
- the dynamic injected-race proof: a program whose racy write the static
  ``R001`` gate would refuse is executed with the gate bypassed, and the
  sanitizer catches the write at run time.
"""

import numpy as np
import pytest

from repro.backend import compile_program
from repro.backend.runtime_support import Context
from repro.graph import rmat, road_grid
from repro.lang.programs import ALL_PROGRAMS
from repro.midend import Schedule
from repro.runtime.sanitizer import SanitizedVector, Sanitizer, SanitizerError


def _sanitized(name, sanitizer, data):
    vector = np.asarray(data, dtype=np.int64).view(SanitizedVector)
    vector._sanitizer = sanitizer
    vector._effect_name = name
    return vector


def _small_graph():
    return road_grid(4, 4, seed=1)


class TestSanitizedVector:
    def test_inert_without_activation(self):
        vector = np.zeros(4, dtype=np.int64).view(SanitizedVector)
        assert vector._sanitizer is None
        vector[1] = 7  # must not raise, nothing to report to
        assert vector[1] == 7

    def test_views_keep_instrumentation_copies_drop_it(self):
        sanitizer = Sanitizer(
            {"f": {"reads": ["x"], "writes": ["x"], "racy": [],
                   "write_index": {}}}
        )
        vector = _sanitized("x", sanitizer, np.zeros(8))
        view = vector[:]  # true view of the same buffer
        assert view._sanitizer is sanitizer
        assert view._effect_name == "x"
        copy = vector[np.array([0, 1])]  # fancy indexing copies
        assert copy._sanitizer is None
        result = vector + 1  # ufunc results are fresh buffers
        assert getattr(result, "_sanitizer", None) is None

    def test_recording_only_inside_scope(self):
        sanitizer = Sanitizer(
            {"f": {"reads": ["x"], "writes": ["x"], "racy": [],
                   "write_index": {}}}
        )
        vector = _sanitized("x", sanitizer, np.zeros(8))
        vector[3] = 1  # outside any scope: not recorded
        sanitizer.begin_apply("f")
        vector[4] = 2
        _ = vector[4]
        sanitizer.end_apply()
        assert sanitizer.log == [{"udf": "f", "reads": ["x"], "writes": ["x"]}]


class TestScopeRules:
    def _sanitizer(self, **contract):
        base = {"reads": [], "writes": [], "racy": [], "write_index": {}}
        base.update(contract)
        return Sanitizer({"f": base})

    def test_unknown_udf_rejected(self):
        sanitizer = self._sanitizer()
        with pytest.raises(SanitizerError, match="no static effect summary"):
            sanitizer.begin_apply("ghost")

    def test_unreported_read_rejected(self):
        sanitizer = self._sanitizer(reads=["a"])
        vector = _sanitized("b", sanitizer, np.zeros(4))
        sanitizer.begin_apply("f")
        _ = vector[0]
        with pytest.raises(SanitizerError, match="read vector 'b'"):
            sanitizer.end_apply()

    def test_unreported_write_rejected(self):
        sanitizer = self._sanitizer(reads=["a"], writes=["a"])
        vector = _sanitized("b", sanitizer, np.zeros(4))
        sanitizer.begin_apply("f")
        vector[2] = 9
        with pytest.raises(SanitizerError, match="wrote vector 'b'"):
            sanitizer.end_apply()

    def test_read_of_written_vector_allowed(self):
        # Rule 1 admits the union of reads and writes (a relaxation reads
        # the old value of the vector it updates).
        sanitizer = self._sanitizer(writes=["a"], write_index={"a": ["dst"]})
        vector = _sanitized("a", sanitizer, np.zeros(4))
        sanitizer.begin_apply("f")
        _ = vector[1]
        vector[1] = 3
        sanitizer.end_apply()
        assert sanitizer.log[-1]["writes"] == ["a"]

    def test_frontier_containment_violation(self):
        graph = _small_graph()
        sanitizer = self._sanitizer(
            writes=["a"], write_index={"a": ["dst"]}
        )
        vector = _sanitized("a", sanitizer, np.zeros(graph.num_vertices))
        frontier = np.array([0], dtype=np.int64)
        sanitizer.begin_apply("f", frontier=frontier, edges=graph)
        # Find a vertex outside frontier {0} and its out-neighborhood.
        from repro.runtime.frontier import gather_out_edges

        _, neighbors, _ = gather_out_edges(graph, frontier)
        allowed = set([0]) | set(int(v) for v in neighbors)
        outside = next(
            v for v in range(graph.num_vertices) if v not in allowed
        )
        vector[outside] = 5
        with pytest.raises(SanitizerError, match="outside the frontier"):
            sanitizer.end_apply()

    def test_frontier_containment_pass(self):
        graph = _small_graph()
        sanitizer = self._sanitizer(
            writes=["a"], write_index={"a": ["dst"]}
        )
        vector = _sanitized("a", sanitizer, np.zeros(graph.num_vertices))
        frontier = np.array([0], dtype=np.int64)
        sanitizer.begin_apply("f", frontier=frontier, edges=graph)
        from repro.runtime.frontier import gather_out_edges

        _, neighbors, _ = gather_out_edges(graph, frontier)
        vector[np.asarray(neighbors, dtype=np.int64)] = 1
        sanitizer.end_apply()
        assert sanitizer.log[-1]["writes"] == ["a"]

    def test_unknown_provenance_skips_containment(self):
        graph = _small_graph()
        sanitizer = self._sanitizer(
            writes=["a"], write_index={"a": ["unknown"]}
        )
        vector = _sanitized("a", sanitizer, np.zeros(graph.num_vertices))
        sanitizer.begin_apply(
            "f", frontier=np.array([0], dtype=np.int64), edges=graph
        )
        vector[graph.num_vertices - 1] = 5  # arbitrary vertex: in-contract
        sanitizer.end_apply()

    def test_racy_write_raises_at_the_write(self):
        sanitizer = self._sanitizer(
            writes=["a"], racy=["a"], write_index={"a": ["dst"]}
        )
        vector = _sanitized("a", sanitizer, np.zeros(4))
        sanitizer.begin_apply("f")
        with pytest.raises(SanitizerError, match="R001"):
            vector[1] = 3

    def test_abort_discards_scope(self):
        sanitizer = self._sanitizer(reads=["a"])
        vector = _sanitized("b", sanitizer, np.zeros(4))
        sanitizer.begin_apply("f")
        _ = vector[0]  # would fail rule 1 at end_apply
        sanitizer.abort()
        assert sanitizer.active is None
        assert sanitizer.log == []


def _heuristic_extern(ctx, dst_vertex):
    coords = ctx.globals["edges"].coordinates
    h = ctx.globals["h"]
    d = np.abs(coords - coords[int(dst_vertex)]).sum(axis=1)
    h[:] = d.astype(np.int64)


# (program, schedule, graph fixture, args, externs?) — all six paper
# algorithms, each under a strategy its operators support.
DIFF_CASES = [
    ("sssp", Schedule(priority_update="eager_with_fusion", delta=3),
     "diff_graph", ["0"], None),
    ("sssp", Schedule(priority_update="lazy", delta=4),
     "diff_graph", ["0"], None),
    ("wbfs", Schedule(priority_update="eager_with_fusion", delta=3),
     "diff_graph", ["0"], None),
    ("ppsp", Schedule(priority_update="eager_with_fusion", delta=3),
     "diff_graph", ["0", "40"], None),
    ("widest", Schedule(priority_update="eager_no_fusion", delta=2),
     "diff_graph", ["0"], None),
    ("kcore", Schedule(priority_update="lazy_constant_sum"),
     "diff_graph", [], None),
    ("astar", Schedule(priority_update="eager_no_fusion"),
     "road_graph", ["0", "100"], _heuristic_extern),
]


def _run(name, schedule, args, graph, vectorize=True, externs=None):
    program = compile_program(ALL_PROGRAMS[name], schedule)
    return program.run(
        [name, "-", *args],
        graph=graph,
        extern_functions=externs,
        vectorize=vectorize,
    )


@pytest.fixture(scope="module")
def diff_graph():
    return rmat(7, 6, seed=11).symmetrized()


@pytest.fixture(scope="module")
def road_graph():
    return road_grid(12, 12, seed=5)


class TestSanitizerDifferential:
    @pytest.mark.parametrize(
        "name,schedule,graph_fixture,args,extern",
        DIFF_CASES,
        ids=[f"{c[0]}-{c[1].priority_update}" for c in DIFF_CASES],
    )
    def test_bit_identical_with_sanitizer(
        self, request, name, schedule, graph_fixture, args, extern
    ):
        graph = request.getfixturevalue(graph_fixture)
        externs = {"computeHeuristic": extern} if extern else None
        plain = _run(name, schedule, args, graph, externs=externs)
        checked = _run(
            name, schedule.with_(sanitize=True), args, graph, externs=externs
        )
        for vec_name, value in plain.globals.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(
                    value, checked.globals[vec_name]
                ), vec_name
        assert plain.stats.rounds == checked.stats.rounds
        assert plain.stats.relaxations == checked.stats.relaxations
        sanitizer = checked.context.sanitizer
        assert sanitizer is not None
        assert len(sanitizer.log) > 0

    def test_setcover_extern_processing_differential(self, diff_graph):
        # setcover delegates bucket processing to an extern function, so
        # no apply scopes open — but the instrumented run must still be
        # bit-identical with the sanitizer armed.
        from repro.backend.extern_library import setcover_externs

        schedule = Schedule(priority_update="lazy")
        plain = _run(
            "setcover", schedule, [], diff_graph,
            externs=setcover_externs(seed=1),
        )
        checked = _run(
            "setcover", schedule.with_(sanitize=True), [], diff_graph,
            externs=setcover_externs(seed=1),
        )
        for vec_name, value in plain.globals.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(
                    value, checked.globals[vec_name]
                ), vec_name
        assert checked.context.sanitizer is not None

    def test_scalar_dispatch_also_validated(self, diff_graph):
        schedule = Schedule(priority_update="eager_with_fusion", delta=3)
        plain = _run("sssp", schedule, ["0"], diff_graph, vectorize=False)
        checked = _run(
            "sssp",
            schedule.with_(sanitize=True),
            ["0"],
            diff_graph,
            vectorize=False,
        )
        assert np.array_equal(
            plain.vector("dist"), checked.vector("dist")
        )
        assert len(checked.context.sanitizer.log) > 0

    def test_unsanitized_run_has_no_instrumentation(self, diff_graph):
        result = _run("sssp", Schedule(priority_update="lazy"), ["0"], diff_graph)
        assert result.context.sanitizer is None
        dist = result.globals["dist"]
        assert not isinstance(dist, SanitizedVector)


# sssp with an unguarded direct store to dist before the guarded update:
# the static race analysis classifies the store unordered racy (R001)
# under a parallel schedule and refuses to execute the program.
RACY_SSSP = ALL_PROGRAMS["sssp"].replace(
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
    "    dist[dst] = new_dist;\n"
    "    pq.updatePriorityMin(dst, dist[dst], new_dist);",
)
assert RACY_SSSP != ALL_PROGRAMS["sssp"]


class TestInjectedRaceDynamic:
    def test_sanitizer_catches_bypassed_r001(self, diff_graph):
        """Disable the static R001 refusal, then prove the dynamic
        sanitizer still refuses the racy write before it commits."""
        program = compile_program(
            RACY_SSSP, Schedule(priority_update="lazy", sanitize=True)
        )
        original = Context.declare_race_report
        Context.declare_race_report = lambda self, **kw: None
        try:
            with pytest.raises(SanitizerError, match="R001"):
                program.run(["sssp", "-", "0"], graph=diff_graph,
                            vectorize=False)
        finally:
            Context.declare_race_report = original

    def test_static_gate_fires_without_bypass(self, diff_graph):
        from repro.errors import GraphItError

        program = compile_program(
            RACY_SSSP,
            Schedule(
                priority_update="eager_with_fusion",
                delta=3,
                num_threads=4,
                execution="parallel",
            ),
        )
        with pytest.raises(GraphItError, match="R001"):
            program.run(["sssp", "-", "0"], graph=diff_graph)
