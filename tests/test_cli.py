"""Tests for the command-line interface (python -m repro)."""

import numpy as np
import pytest

from repro.algorithms import dijkstra_reference
from repro.cli import main
from repro.graph import load_edge_list, rmat, save_edge_list


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph.el"
    graph = rmat(8, 10, seed=3)
    save_edge_list(graph, path)
    source = int(np.argmax(graph.out_degrees()))
    return str(path), graph, source


class TestGenerate:
    def test_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.el"
        code = main(["generate", "rmat", "--scale", "6", "-o", str(out)])
        assert code == 0
        graph = load_edge_list(out)
        assert graph.num_vertices <= 64
        assert "wrote rmat graph" in capsys.readouterr().out

    def test_road(self, tmp_path):
        out = tmp_path / "r.el"
        assert main(["generate", "road", "--scale", "8", "-o", str(out)]) == 0
        graph = load_edge_list(out)
        assert graph.is_symmetric()


class TestCompile:
    def test_python_to_stdout(self, capsys):
        assert main(["compile", "sssp"]) == 0
        out = capsys.readouterr().out
        assert "def program(ctx):" in out

    def test_cpp_to_file(self, tmp_path, capsys):
        out = tmp_path / "sssp.cpp"
        code = main(
            [
                "compile",
                "sssp",
                "--backend",
                "cpp",
                "--priority-update",
                "eager_with_fusion",
                "--delta",
                "8",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "bucket fusion" in text

    def test_compile_gt_file(self, tmp_path, capsys):
        source = tmp_path / "prog.gt"
        from repro.lang import program_source

        source.write_text(program_source("kcore"))
        assert main(["compile", str(source)]) == 0
        assert "apply_f" in capsys.readouterr().out

    def test_unknown_program_errors(self, capsys):
        assert main(["compile", "pagerank2000"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_schedule_errors(self, capsys):
        code = main(
            [
                "compile",
                "sssp",
                "--priority-update",
                "eager_no_fusion",
                "--direction",
                "DensePull",
            ]
        )
        assert code == 1
        assert "SparsePush" in capsys.readouterr().err


class TestRun:
    def test_run_sssp(self, graph_file, capsys):
        path, graph, source = graph_file
        code = main(
            [
                "run",
                "sssp",
                path,
                str(source),
                "--priority-update",
                "eager_with_fusion",
                "--delta",
                "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds=" in out
        assert "vector dist:" in out
        reference = dijkstra_reference(graph, source)
        finite = reference[reference < 2**62]
        assert f"max={finite.max()}" in out

    def test_run_kcore(self, tmp_path, capsys):
        sym = rmat(7, 8, seed=2).symmetrized()
        path = tmp_path / "sym.el"
        save_edge_list(sym, path)
        code = main(
            ["run", "kcore", str(path), "--priority-update", "lazy_constant_sum"]
        )
        assert code == 0
        assert "vector D:" in capsys.readouterr().out


class TestRunIncremental:
    def test_run_incremental_resumes_per_batch_and_verifies(
        self, graph_file, tmp_path, capsys
    ):
        path, graph, source = graph_file
        sources, dests, _ = graph.edge_list()
        src, dst = int(sources[0]), int(dests[0])
        script = tmp_path / "delta.mut"
        script.write_text(
            f"add {source} {dst} 2\n"
            f"remove {src} {dst}\n"
            "flush\n"
            f"update {source} {dst} 1  # improve the edge we just added\n"
        )
        code = main(
            [
                "run",
                "sssp",
                path,
                str(source),
                "--incremental",
                "--mutations",
                str(script),
                "--delta",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged from scratch:" in out
        assert "batch 0: mutations=2" in out
        assert "batch 1: mutations=1" in out
        assert out.count("verify=ok") == 2
        assert "final vector:" in out

    def test_run_incremental_requires_mutation_script(self, graph_file, capsys):
        path, _, source = graph_file
        code = main(["run", "sssp", path, str(source), "--incremental"])
        assert code == 1
        assert "--mutations" in capsys.readouterr().err

    def test_run_incremental_rejects_ineligible_program(
        self, tmp_path, graph_file, capsys
    ):
        path, _, _ = graph_file
        script = tmp_path / "one.mut"
        script.write_text("add 0 1\n")
        code = main(
            ["run", "kcore", path, "--incremental", "--mutations", str(script)]
        )
        assert code == 1
        assert "not eligible" in capsys.readouterr().err


class TestTraceAndProfile:
    def test_trace_writes_valid_chrome_json(self, graph_file, tmp_path, capsys):
        from repro.obs import get_tracer, load_chrome_trace

        path, _, source = graph_file
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "sssp",
                path,
                str(source),
                "--priority-update",
                "eager_with_fusion",
                "--delta",
                "8",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert get_tracer() is None  # the CLI deactivated its tracer
        payload = load_chrome_trace(str(out))  # validates on load
        names = {e["name"] for e in payload["traceEvents"]}
        assert "compile" in names and "bucket.advance" in names
        assert payload["metadata"]["schedule"]["priority_update"] == (
            "eager_with_fusion"
        )
        assert "trace events" in capsys.readouterr().out

    def test_trace_synthetic_graph_and_parallel_spans(self, tmp_path):
        from repro.obs import load_chrome_trace

        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "sssp",
                "--execution",
                "parallel",
                "--threads",
                "4",
                "--delta",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        names = {e["name"] for e in load_chrome_trace(str(out))["traceEvents"]}
        assert "worker.produce" in names and "barrier.wait" in names

    def test_profile_prints_table(self, graph_file, capsys):
        path, _, source = graph_file
        code = main(["profile", "sssp", path, str(source), "--delta", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self ms" in out
        assert "program.run" in out


class TestBenchCheck:
    def test_bench_check_passes_and_fails_on_tolerance(
        self, tmp_path, capsys
    ):
        """Generate real (tiny) baselines, then check against them twice:
        honestly (passes) and with an impossible baseline (fails)."""
        import json

        kernels = tmp_path / "BENCH_apply.json"
        parallel = tmp_path / "BENCH_parallel.json"
        assert (
            main(
                [
                    "bench-kernels",
                    "--scale",
                    "9",
                    "--repeats",
                    "1",
                    "-o",
                    str(kernels),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "bench-parallel",
                    "--scale",
                    "9",
                    "--workers",
                    "2",
                    "--repeats",
                    "1",
                    "-o",
                    str(parallel),
                ]
            )
            == 0
        )
        args = [
            "bench-check",
            "--kernels-baseline",
            str(kernels),
            "--parallel-baseline",
            str(parallel),
            "--repeats",
            "1",
            "--out-dir",
            str(tmp_path / "fresh"),
        ]
        code = main(args + ["--tolerance", "0.99"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all checks passed" in out
        assert "speedup" in out and "exact" in out

        # An absurdly fast baseline must trip the perf gate.
        record = json.loads(kernels.read_text())
        record["speedup"] = 1e9
        kernels.write_text(json.dumps(record))
        code = main(args + ["--tolerance", "0.2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "bench-check FAIL" in out
        assert "regressed" in out

    def test_bench_check_missing_baseline_errors(self, tmp_path, capsys):
        code = main(
            ["bench-check", "--kernels-baseline", str(tmp_path / "nope.json")]
        )
        assert code == 1
        assert "cannot read baseline" in capsys.readouterr().err


class TestLintJson:
    def test_clean_program_document(self, capsys):
        import json

        assert main(["lint", "sssp", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["diagnostics"] == []
        assert document["checked"] == 1

    def test_diagnostics_carry_span_fields(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.gt"
        bad.write_text("func main(")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["errors"] >= 1
        for entry in document["diagnostics"]:
            assert set(entry) == {"code", "severity", "span", "message"}
            assert entry["span"]["file"] == str(bad)
            assert entry["span"]["line"] >= 1
            assert entry["span"]["column"] >= 1


class TestAnalyze:
    def test_json_document(self, capsys):
        import json

        assert main(["analyze", "sssp", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        report = document["programs"]["sssp"]
        assert report["effects"]["ordered_loop"]["udf"] == "updateEdge"
        verdicts = report["effects"]["monotonicity"]
        assert verdicts and verdicts[0]["verdict"] == "monotone-decreasing"
        assert document["fusion"][0]["pair"] == ["sssp", "sssp"]

    def test_text_fusion_matrix(self, capsys):
        assert main(["analyze", "sssp", "widest"]) == 0
        out = capsys.readouterr().out
        assert "monotonicity priority(pq)" in out
        assert "fusion sssp x widest: blocked" in out
        assert "processing-order mismatch" in out

    def test_analyze_gt_file(self, tmp_path, capsys):
        from repro.lang import program_source

        path = tmp_path / "prog.gt"
        path.write_text(program_source("kcore"))
        assert main(["analyze", str(path)]) == 0
        assert "monotone-decreasing" in capsys.readouterr().out

    def test_explicit_schedule_gates_non_monotone(self, tmp_path, capsys):
        from repro.lang import program_source

        path = tmp_path / "nm.gt"
        path.write_text(
            program_source("kcore").replace(
                "pq.updatePrioritySum(dst, -1, k);",
                "pq.updatePrioritySum(dst, k - 1, k);",
            )
        )
        code = main(
            ["analyze", str(path), "--priority-update", "eager_with_fusion"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "non-monotone" in err
        assert "bucket fusion would be unsound" in err


class TestRunSanitize:
    def test_run_with_sanitizer_reports_scopes(self, graph_file, capsys):
        path, graph, source = graph_file
        code = main(
            [
                "run",
                "sssp",
                path,
                str(source),
                "--priority-update",
                "eager_with_fusion",
                "--delta",
                "8",
                "--sanitize",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds=" in out
        assert "sanitizer:" in out
        assert "apply scopes validated" in out
        assert "updateEdge" in out

    def test_run_without_flag_has_no_sanitizer_line(self, graph_file, capsys):
        path, _, source = graph_file
        assert main(["run", "sssp", path, str(source)]) == 0
        assert "sanitizer:" not in capsys.readouterr().out


class TestAutotune:
    def test_autotune_sssp(self, graph_file, capsys):
        path, _, source = graph_file
        code = main(
            [
                "autotune",
                "sssp",
                path,
                "--source",
                str(source),
                "--trials",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best schedule" in out
        assert "priority_update=" in out
