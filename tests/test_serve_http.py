"""HTTP/1.1 framing for the query service: parsing, limits, responses.

The wire layer is hand-rolled on the standard library, so every framing
rule it relies on is pinned here: request-line/header parsing,
``Content-Length`` body framing, the header/body size caps, keep-alive
vs ``Connection: close`` semantics, and response serialization.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    HTTPError,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    format_response,
    json_response,
    read_request,
)


def parse(raw: bytes):
    """Feed raw bytes through a StreamReader into read_request."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


class TestRequestParsing:
    def test_get_with_query_string(self):
        request = parse(
            b"GET /query?program=sssp&source=3&schedule=delta%3D4 HTTP/1.1\r\n"
            b"Host: x\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/query"
        assert request.query == {
            "program": "sssp",
            "source": "3",
            "schedule": "delta=4",
        }
        assert request.body == b""
        assert not request.close  # HTTP/1.1 defaults to keep-alive

    def test_post_with_content_length_body(self):
        body = json.dumps({"program": "kcore"}).encode()
        request = parse(
            b"POST /query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.json() == {"program": "kcore"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_are_case_insensitive(self):
        request = parse(b"GET / HTTP/1.1\r\nCoNNecTion: Close\r\n\r\n")
        assert request.close

    def test_http10_implies_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert request.close

    def test_path_is_percent_decoded(self):
        request = parse(b"GET /a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/a b"

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_non_http_version_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_request_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nHost: x")  # no terminator, then EOF
        assert excinfo.value.status == 400

    def test_bad_content_length_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_transfer_encoding_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 400


class TestLimits:
    def test_oversized_header_block_rejected(self):
        padding = b"X-Pad: " + b"a" * MAX_HEADER_BYTES + b"\r\n"
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + padding + b"\r\n")
        assert excinfo.value.status == 413

    def test_oversized_body_rejected_before_reading(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
        assert excinfo.value.status == 413

    def test_negative_content_length_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert excinfo.value.status == 400


class TestBodyDecoding:
    def test_json_non_object_rejected(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]"
        )
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_json_garbage_rejected(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_empty_body_is_empty_object(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        assert request.json() == {}


class TestResponses:
    def test_framing_headers_present(self):
        raw = format_response(200, b"hello", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hello"
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 5" in lines
        assert "Connection: keep-alive" in lines

    def test_close_and_extra_headers(self):
        raw = format_response(
            429, b"{}", extra_headers={"Retry-After": "1"}, close=True
        )
        head = raw.split(b"\r\n\r\n")[0].decode()
        assert "429 Too Many Requests" in head
        assert "Retry-After: 1" in head
        assert "Connection: close" in head

    def test_head_only_omits_body_keeps_length(self):
        raw = format_response(200, b"hello", head_only=True)
        assert raw.endswith(b"\r\n\r\n")
        assert b"Content-Length: 5" in raw

    def test_json_response_round_trips(self):
        raw = json_response(200, {"b": 2, "a": 1})
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == {"a": 1, "b": 2}
        # sorted keys: deterministic bytes for bit-match assertions
        assert body == b'{"a": 1, "b": 2}\n'
