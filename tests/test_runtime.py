"""Unit tests for the runtime substrate: stats, atomics, threads, frontiers."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.graph import from_edges, rmat
from repro.runtime import (
    AtomicOps,
    CostModel,
    RuntimeStats,
    VirtualThreadPool,
    apply_constant_sum,
    compact_frontier,
    gather_in_edges,
    gather_out_edges,
    gather_segments,
    histogram_counts,
    output_buffer_offsets,
    TOMBSTONE,
)


class TestRuntimeStats:
    def test_round_lifecycle(self):
        stats = RuntimeStats(num_threads=2)
        stats.begin_round()
        stats.add_thread_work(0, 10)
        stats.add_thread_work(1, 4)
        stats.end_round(syncs=1)
        assert stats.rounds == 1
        assert stats.max_work_per_round == [10]
        assert stats.total_work_per_round == [14]
        assert stats.global_syncs == 1

    def test_fused_rounds_do_not_increase_syncs(self):
        stats = RuntimeStats(num_threads=1)
        stats.begin_round()
        stats.add_thread_work(0, 5)
        stats.end_round(syncs=1, fused=3)
        assert stats.rounds == 1
        assert stats.fused_rounds == 3
        assert stats.global_syncs == 1

    def test_double_begin_rejected(self):
        stats = RuntimeStats()
        stats.begin_round()
        with pytest.raises(RuntimeError):
            stats.begin_round()

    def test_work_outside_round_rejected(self):
        stats = RuntimeStats()
        with pytest.raises(RuntimeError):
            stats.add_thread_work(0, 1)
        with pytest.raises(RuntimeError):
            stats.end_round()

    def test_simulated_time_components(self):
        stats = RuntimeStats(num_threads=2)
        stats.begin_round()
        stats.add_thread_work(0, 100)
        stats.end_round(syncs=1)
        model = CostModel(work_unit=1.0, sync=50.0, bucket_insert=0, buffer_op=0, atomic=0)
        assert stats.simulated_time(model) == pytest.approx(150.0)

    def test_simulated_time_charges_parallel_ops(self):
        stats = RuntimeStats(num_threads=4)
        stats.bucket_inserts = 40
        model = CostModel(work_unit=1, sync=0, bucket_insert=2, buffer_op=0, atomic=0)
        # 40 inserts * 2 units / 4 threads
        assert stats.simulated_time(model) == pytest.approx(20.0)

    def test_fewer_syncs_means_less_simulated_time(self):
        low, high = RuntimeStats(num_threads=1), RuntimeStats(num_threads=1)
        for stats, syncs in ((low, 1), (high, 2)):
            for _ in range(10):
                stats.begin_round()
                stats.add_thread_work(0, 5)
                stats.end_round(syncs=syncs)
        assert low.simulated_time() < high.simulated_time()

    def test_merge(self):
        a, b = RuntimeStats(num_threads=1), RuntimeStats(num_threads=1)
        for stats in (a, b):
            stats.begin_round()
            stats.add_thread_work(0, 3)
            stats.end_round()
        a.relaxations = 5
        b.relaxations = 7
        a.merge(b)
        assert a.rounds == 2
        assert a.relaxations == 12
        assert a.max_work_per_round == [3, 3]

    def test_summary_keys(self):
        stats = RuntimeStats(num_threads=2)
        summary = stats.summary()
        assert summary["threads"] == 2
        assert "simulated_time" in summary
        assert "rounds" in summary


class TestAtomicOps:
    def test_write_min(self):
        stats = RuntimeStats()
        ops = AtomicOps(stats)
        array = np.array([10, 20], dtype=np.int64)
        assert ops.write_min(array, 0, 5)
        assert not ops.write_min(array, 0, 7)
        assert array[0] == 5
        assert stats.atomic_ops == 2

    def test_write_max(self):
        ops = AtomicOps()
        array = np.array([10], dtype=np.int64)
        assert ops.write_max(array, 0, 15)
        assert not ops.write_max(array, 0, 12)
        assert array[0] == 15

    def test_cas(self):
        ops = AtomicOps()
        array = np.array([3], dtype=np.int64)
        assert ops.cas(array, 0, 3, 9)
        assert not ops.cas(array, 0, 3, 11)
        assert array[0] == 9

    def test_fetch_add(self):
        ops = AtomicOps()
        array = np.array([7], dtype=np.int64)
        assert ops.fetch_add(array, 0, 2) == 7
        assert array[0] == 9

    def test_write_min_batch_duplicates(self):
        ops = AtomicOps()
        array = np.array([100, 100], dtype=np.int64)
        indices = np.array([0, 0, 1], dtype=np.int64)
        values = np.array([50, 30, 200], dtype=np.int64)
        winners = ops.write_min_batch(array, indices, values)
        assert array.tolist() == [30, 100]
        # The 30-write wins; the 50-write improved-then-lost; 200 never won.
        assert winners.tolist() == [False, True, False]

    def test_write_min_batch_empty(self):
        ops = AtomicOps()
        array = np.array([1], dtype=np.int64)
        assert ops.write_min_batch(array, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)).size == 0

    def test_batch_charges_per_element(self):
        stats = RuntimeStats()
        ops = AtomicOps(stats)
        array = np.zeros(4, dtype=np.int64)
        ops.fetch_add_batch(array, np.array([0, 1, 1]), np.array([1, 1, 1]))
        assert stats.atomic_ops == 3
        assert array.tolist() == [1, 2, 0, 0]


class TestVirtualThreadPool:
    def test_static_partition_covers_items(self):
        pool = VirtualThreadPool(3, policy="static-vertex-parallel")
        items = np.arange(10)
        parts = pool.partition(items)
        assert len(parts) == 3
        assert np.array_equal(np.sort(np.concatenate(parts)), items)

    def test_dynamic_chunked_round_robin(self):
        pool = VirtualThreadPool(2, policy="dynamic-vertex-parallel", chunk_size=2)
        parts = pool.partition(np.arange(8))
        assert parts[0].tolist() == [0, 1, 4, 5]
        assert parts[1].tolist() == [2, 3, 6, 7]

    def test_edge_aware_balances_loads(self):
        pool = VirtualThreadPool(
            2, policy="edge-aware-dynamic-vertex-parallel", chunk_size=1
        )
        items = np.arange(4)
        degrees = np.array([100, 1, 1, 1])
        parts = pool.partition(items, degrees=degrees)
        # The heavy vertex must be alone on its thread.
        loads = [degrees[part].sum() for part in parts]
        assert max(loads) == 100

    def test_edge_aware_requires_degrees(self):
        pool = VirtualThreadPool(2, policy="edge-aware-dynamic-vertex-parallel")
        with pytest.raises(SchedulingError):
            pool.partition(np.arange(4))

    def test_empty_items(self):
        pool = VirtualThreadPool(4)
        parts = pool.partition(np.empty(0, dtype=np.int64))
        assert all(part.size == 0 for part in parts)

    def test_deterministic(self):
        pool = VirtualThreadPool(3, chunk_size=5)
        items = np.arange(100)
        a = pool.partition(items)
        b = pool.partition(items)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_invalid_config(self):
        with pytest.raises(SchedulingError):
            VirtualThreadPool(0)
        with pytest.raises(SchedulingError):
            VirtualThreadPool(2, policy="work-stealing")
        with pytest.raises(SchedulingError):
            VirtualThreadPool(2, chunk_size=0)


class TestFrontierHelpers:
    def test_gather_segments(self):
        starts = np.array([0, 5, 5, 9])
        ends = np.array([2, 5, 8, 10])
        assert gather_segments(starts, ends).tolist() == [0, 1, 5, 6, 7, 9]

    def test_gather_segments_empty(self):
        assert gather_segments(np.array([3]), np.array([3])).size == 0

    def test_gather_out_edges(self, diamond_graph):
        sources, dests, weights = gather_out_edges(
            diamond_graph, np.array([0, 3], dtype=np.int64)
        )
        assert sources.tolist() == [0, 0, 3]
        assert dests.tolist() == [1, 2, 4]
        assert weights.tolist() == [2, 7, 1]

    def test_gather_out_edges_zero_degree(self, diamond_graph):
        sources, dests, _ = gather_out_edges(
            diamond_graph, np.array([4], dtype=np.int64)
        )
        assert sources.size == 0
        assert dests.size == 0

    def test_gather_out_edges_mixed_degrees(self, diamond_graph):
        sources, dests, _ = gather_out_edges(
            diamond_graph, np.array([4, 0, 4, 2], dtype=np.int64)
        )
        assert sources.tolist() == [0, 0, 2]
        assert dests.tolist() == [1, 2, 3]

    def test_gather_in_edges(self, diamond_graph):
        sources, dests, weights = gather_in_edges(
            diamond_graph, np.array([3], dtype=np.int64)
        )
        assert sorted(sources.tolist()) == [1, 2]
        assert dests.tolist() == [3, 3]
        assert sorted(weights.tolist()) == [1, 10]

    def test_gather_matches_scalar_iteration(self):
        graph = rmat(8, 8, seed=7)
        frontier = np.array([0, 3, 17, 200], dtype=np.int64)
        sources, dests, weights = gather_out_edges(graph, frontier)
        expected = [
            (int(v), int(u), int(w))
            for v in frontier
            for u, w in graph.out_edges(int(v))
        ]
        assert list(zip(sources.tolist(), dests.tolist(), weights.tolist())) == expected

    def test_output_buffer_offsets(self, diamond_graph):
        offsets = output_buffer_offsets(diamond_graph, np.array([0, 1, 4]))
        assert offsets.tolist() == [0, 2, 4, 4]

    def test_compact_frontier(self):
        buffer = np.array([3, TOMBSTONE, 5, TOMBSTONE], dtype=np.int64)
        assert compact_frontier(buffer).tolist() == [3, 5]


class TestHistogram:
    def test_histogram_counts(self):
        stats = RuntimeStats()
        vertices, counts = histogram_counts(np.array([3, 1, 3, 3, 1]), stats)
        assert vertices.tolist() == [1, 3]
        assert counts.tolist() == [2, 3]
        assert stats.histogram_updates == 5

    def test_histogram_empty(self):
        vertices, counts = histogram_counts(np.empty(0, dtype=np.int64))
        assert vertices.size == 0
        assert counts.size == 0

    def test_apply_constant_sum_with_floor(self):
        priorities = np.array([10, 10, 10], dtype=np.int64)
        new_values = apply_constant_sum(
            priorities, np.array([0, 1]), np.array([3, 20]), -1, floor_value=5
        )
        assert new_values.tolist() == [7, 5]
        assert priorities.tolist() == [7, 5, 10]

    def test_apply_constant_sum_positive_ceiling(self):
        priorities = np.array([1], dtype=np.int64)
        apply_constant_sum(priorities, np.array([0]), np.array([10]), 2, floor_value=15)
        assert priorities[0] == 15
