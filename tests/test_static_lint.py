"""Tests for the in-repo stdlib-ast static linter (tools/static_lint.py).

Covers each rule on synthetic snippets, the exemptions that keep the
unused-import rule honest, and the cleanliness gate: the shipped source
tree must produce zero findings.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "static_lint", REPO / "tools" / "static_lint.py"
)
static_lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(static_lint)


def _lint_snippet(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(source)
    return static_lint.lint_file(path)


class TestUnusedImports:
    def test_flags_unused_import(self, tmp_path):
        findings = _lint_snippet(tmp_path, "import os\nprint('hi')\n")
        assert len(findings) == 1
        assert "L001" in findings[0]
        assert "'os'" in findings[0]

    def test_used_import_clean(self, tmp_path):
        assert _lint_snippet(tmp_path, "import os\nprint(os.sep)\n") == []

    def test_from_import_alias(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "from os import path as p\nprint('hi')\n"
        )
        assert len(findings) == 1 and "'p'" in findings[0]

    def test_attribute_chain_counts_as_use(self, tmp_path):
        assert (
            _lint_snippet(tmp_path, "import os\nx = os.path.sep\n") == []
        )

    def test_init_py_exempt(self, tmp_path):
        assert (
            _lint_snippet(tmp_path, "import os\n", name="__init__.py") == []
        )

    def test_dunder_all_exempt(self, tmp_path):
        source = "from os import sep\n__all__ = ['sep']\n"
        assert _lint_snippet(tmp_path, source) == []

    def test_future_import_exempt(self, tmp_path):
        assert (
            _lint_snippet(
                tmp_path, "from __future__ import annotations\nx = 1\n"
            )
            == []
        )

    def test_type_checking_block_exempt(self, tmp_path):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from os import sep\n"
            'def f(x: "sep") -> None: ...\n'
        )
        assert _lint_snippet(tmp_path, source) == []


class TestBareExcept:
    def test_flags_bare_except(self, tmp_path):
        source = "try:\n    pass\nexcept:\n    pass\n"
        findings = _lint_snippet(tmp_path, source)
        assert len(findings) == 1 and "L002" in findings[0]

    def test_typed_except_clean(self, tmp_path):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert _lint_snippet(tmp_path, source) == []


class TestMutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "[x for x in ()]"]
    )
    def test_flags_mutable_default(self, tmp_path, default):
        findings = _lint_snippet(
            tmp_path, f"def f(a, b={default}):\n    return b\n"
        )
        assert len(findings) == 1 and "L003" in findings[0]

    def test_kwonly_default_also_checked(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "def f(*, b=[]):\n    return b\n"
        )
        assert len(findings) == 1 and "L003" in findings[0]

    def test_none_default_clean(self, tmp_path):
        assert (
            _lint_snippet(tmp_path, "def f(b=None):\n    return b\n") == []
        )

    def test_tuple_default_clean(self, tmp_path):
        assert (
            _lint_snippet(tmp_path, "def f(b=()):\n    return b\n") == []
        )


class TestDriver:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = _lint_snippet(tmp_path, "def f(:\n")
        assert len(findings) == 1 and "L000" in findings[0]

    def test_finding_format_matches_problem_matcher(self, tmp_path):
        # file:line:col: error[CODE]: message — what the GitHub Actions
        # problem matcher (and repro lint itself) parse.
        import re

        (finding,) = _lint_snippet(tmp_path, "import os\n")
        assert re.match(
            r"^.+:\d+:\d+: error\[L\d{3}\]: .+$", finding
        ), finding

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert static_lint.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\n")
        assert static_lint.main([str(dirty)]) == 1
        assert static_lint.main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()


class TestRepoIsClean:
    @pytest.mark.parametrize("tree", ["src", "tools"])
    def test_tree_has_no_findings(self, tree):
        findings = static_lint.lint_paths([REPO / tree])
        assert findings == [], "\n".join(findings)
