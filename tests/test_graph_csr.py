"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, from_edges


def test_basic_counts(diamond_graph):
    assert diamond_graph.num_vertices == 5
    assert diamond_graph.num_edges == 6


def test_out_neighbors_and_weights(diamond_graph):
    assert diamond_graph.out_neighbors(0).tolist() == [1, 2]
    assert diamond_graph.out_weights(0).tolist() == [2, 7]
    assert diamond_graph.out_neighbors(4).tolist() == []


def test_out_edges_iteration(diamond_graph):
    assert list(diamond_graph.out_edges(1)) == [(2, 3), (3, 10)]


def test_degrees(diamond_graph):
    assert diamond_graph.out_degrees().tolist() == [2, 2, 1, 1, 0]
    assert diamond_graph.out_degree(0) == 2
    assert diamond_graph.in_degree(3) == 2
    assert diamond_graph.in_degrees().tolist() == [0, 1, 2, 2, 1]


def test_in_neighbors(diamond_graph):
    assert sorted(diamond_graph.in_neighbors(3).tolist()) == [1, 2]
    assert diamond_graph.in_neighbors(0).tolist() == []


def test_in_weights_align_with_in_neighbors(diamond_graph):
    sources = diamond_graph.in_neighbors(3).tolist()
    weights = diamond_graph.in_weights(3).tolist()
    assert dict(zip(sources, weights)) == {1: 10, 2: 1}


def test_edge_list_roundtrip(diamond_graph):
    sources, dests, weights = diamond_graph.edge_list()
    rebuilt = from_edges(5, zip(sources.tolist(), dests.tolist(), weights.tolist()))
    assert np.array_equal(rebuilt.indptr, diamond_graph.indptr)
    assert np.array_equal(rebuilt.indices, diamond_graph.indices)
    assert np.array_equal(rebuilt.weights, diamond_graph.weights)


def test_reversed_transposes(diamond_graph):
    reverse = diamond_graph.reversed()
    assert reverse.num_edges == diamond_graph.num_edges
    assert sorted(reverse.out_neighbors(3).tolist()) == [1, 2]
    assert reverse.out_neighbors(0).tolist() == []


def test_reversed_twice_is_identity(diamond_graph):
    twice = diamond_graph.reversed().reversed()
    assert np.array_equal(twice.indptr, diamond_graph.indptr)
    assert np.array_equal(twice.indices, diamond_graph.indices)


def test_symmetrized(diamond_graph):
    sym = diamond_graph.symmetrized()
    assert sym.is_symmetric()
    assert 0 in sym.out_neighbors(1).tolist()
    # Symmetrization keeps the minimum weight of parallel edges.
    idx = sym.out_neighbors(1).tolist().index(0)
    assert sym.out_weights(1)[idx] == 2


def test_is_symmetric_false_for_directed(diamond_graph):
    assert not diamond_graph.is_symmetric()


def test_with_weights(diamond_graph):
    unit = diamond_graph.with_weights(np.ones(6, dtype=np.int64))
    assert unit.out_weights(0).tolist() == [1, 1]
    # Original untouched.
    assert diamond_graph.out_weights(0).tolist() == [2, 7]


def test_unweighted_defaults_to_one():
    graph = from_edges(3, [(0, 1), (1, 2)])
    assert graph.weights.tolist() == [1, 1]


def test_coordinates_shape_validation():
    with pytest.raises(GraphError):
        CSRGraph(
            np.array([0, 1], dtype=np.int64),
            np.array([0], dtype=np.int64),
            coordinates=np.zeros((3, 2)),
        )


def test_with_coordinates(diamond_graph):
    coords = np.arange(10, dtype=np.float64).reshape(5, 2)
    located = diamond_graph.with_coordinates(coords)
    assert located.has_coordinates
    assert not diamond_graph.has_coordinates
    assert np.array_equal(located.coordinates, coords)


def test_vertex_range_checks(diamond_graph):
    with pytest.raises(GraphError):
        diamond_graph.out_neighbors(5)
    with pytest.raises(GraphError):
        diamond_graph.out_degree(-1)


def test_invalid_indptr_rejected():
    with pytest.raises(GraphError):
        CSRGraph(np.array([1, 2], dtype=np.int64), np.array([0], dtype=np.int64))
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 2], dtype=np.int64), np.array([0], dtype=np.int64))
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 2, 1], dtype=np.int64), np.array([0, 0], dtype=np.int64))


def test_destination_out_of_range_rejected():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 1], dtype=np.int64), np.array([5], dtype=np.int64))


def test_misaligned_weights_rejected():
    with pytest.raises(GraphError):
        CSRGraph(
            np.array([0, 1], dtype=np.int64),
            np.array([0], dtype=np.int64),
            weights=np.array([1, 2], dtype=np.int64),
        )


def test_empty_graph():
    empty = CSRGraph(np.array([0], dtype=np.int64), np.empty(0, dtype=np.int64))
    assert empty.num_vertices == 0
    assert empty.num_edges == 0


def test_single_vertex_no_edges():
    lone = CSRGraph(np.array([0, 0], dtype=np.int64), np.empty(0, dtype=np.int64))
    assert lone.num_vertices == 1
    assert lone.out_degree(0) == 0
    assert lone.in_degree(0) == 0
