"""Small-surface tests: errors, VertexVector, package exports."""

import numpy as np
import pytest

import repro
from repro.errors import (
    AutotuneError,
    CompileError,
    GraphError,
    GraphItError,
    ParseError,
    PriorityQueueError,
    SchedulingError,
    TypeCheckError,
)
from repro.graph import INT_MAX, VertexVector


class TestErrors:
    def test_hierarchy(self):
        for error_class in (
            GraphError,
            ParseError,
            TypeCheckError,
            SchedulingError,
            CompileError,
            PriorityQueueError,
            AutotuneError,
        ):
            assert issubclass(error_class, GraphItError)

    def test_parse_error_location_formatting(self):
        error = ParseError("unexpected token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3

    def test_parse_error_without_location(self):
        error = ParseError("oops")
        assert str(error) == "oops"

    def test_parse_error_line_only(self):
        assert "line 2" in str(ParseError("bad", line=2))


class TestVertexVector:
    def test_fill_and_access(self):
        vector = VertexVector(4, fill=9)
        assert len(vector) == 4
        assert vector[2] == 9
        assert vector.fill_value == 9
        vector[2] = 1
        assert vector[2] == 1
        assert vector.values[2] == 1

    def test_bounds_checked(self):
        vector = VertexVector(3)
        with pytest.raises(GraphError):
            vector[3]
        with pytest.raises(GraphError):
            vector[-1] = 0

    def test_from_array_copies(self):
        source = np.array([1, 2, 3], dtype=np.int64)
        vector = VertexVector.from_array(source)
        source[0] = 99
        assert vector[0] == 1

    def test_copy_is_independent(self):
        vector = VertexVector(2, fill=5)
        clone = vector.copy()
        clone[0] = 7
        assert vector[0] == 5

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            VertexVector(-1)

    def test_int_max_sentinel(self):
        assert INT_MAX == np.iinfo(np.int64).max


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_headline_flow(self):
        from repro import Schedule, dijkstra_reference, sssp
        from repro.graph import road_grid

        graph = road_grid(6, 7, seed=1)
        result = sssp(graph, 0, Schedule(priority_update="eager_with_fusion", delta=256))
        assert np.array_equal(result.distances, dijkstra_reference(graph, 0))


class TestInputValidation:
    def test_negative_weights_rejected(self):
        from repro import Schedule, sssp, ppsp, astar
        from repro.graph import from_edges

        graph = from_edges(3, [(0, 1, 5), (1, 2, -2)])
        with pytest.raises(GraphError):
            sssp(graph, 0)
        with pytest.raises(GraphError):
            ppsp(graph, 0, 2)

    def test_zero_weights_supported(self):
        from repro import Schedule, sssp, dijkstra_reference
        from repro.graph import from_edges

        graph = from_edges(4, [(0, 1, 0), (1, 2, 3), (0, 2, 5), (2, 3, 0)])
        result = sssp(graph, 0, Schedule(priority_update="eager_with_fusion", delta=2))
        assert np.array_equal(result.distances, dijkstra_reference(graph, 0))

    def test_runs_are_deterministic(self):
        from repro import Schedule, sssp
        from repro.graph import rmat

        graph = rmat(8, 8, seed=1)
        schedule = Schedule(priority_update="eager_with_fusion", delta=16)
        a = sssp(graph, 0, schedule)
        b = sssp(graph, 0, schedule)
        assert np.array_equal(a.distances, b.distances)
        assert a.stats.summary() == b.stats.summary()
