"""Workload profiles: the paper's crossover axes distilled from one run.

``workload_profile`` turns ``RuntimeStats`` into the schema-versioned JSON
document autotuner v2 consumes (``repro metrics --workload``).  These tests
pin the document shape, the derived ratios, and — since every input is a
deterministic counter — bit-stability across identical runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Schedule, compile_program
from repro.graph.generators import rmat
from repro.lang.programs import ALL_PROGRAMS
from repro.obs import metrics, workload_profile, write_workload_profile
from repro.obs.workload import WORKLOAD_SCHEMA, _series_summary


def run_sssp(graph, **overrides):
    defaults = dict(priority_update="lazy", delta=3)
    defaults.update(overrides)
    schedule = Schedule(**defaults)
    program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    source = int(np.argmax(graph.out_degrees()))
    result = program.run(["sssp", "-", str(source)], graph=graph)
    return result, schedule


@pytest.fixture
def graph():
    return rmat(10, 16, seed=0, weights=(1, 8))


class TestSeriesSummary:
    def test_empty_series(self):
        assert _series_summary([]) == {
            "count": 0, "min": 0, "max": 0, "mean": 0.0, "median": 0,
        }

    def test_order_statistics(self):
        summary = _series_summary([5, 1, 9, 3])
        assert summary["count"] == 4
        assert summary["min"] == 1
        assert summary["max"] == 9
        assert summary["mean"] == pytest.approx(4.5)
        assert summary["median"] == 5  # upper median of the sorted series


class TestProfileShape:
    def test_axes_present_and_consistent(self, graph):
        result, schedule = run_sssp(graph)
        profile = workload_profile(result.stats, schedule=schedule, graph=graph)

        assert profile["schema"] == WORKLOAD_SCHEMA
        assert set(profile) == {
            "schema", "schedule", "graph", "rounds", "frontier",
            "bucket_occupancy", "updates", "delta_buckets", "work", "metrics",
        }
        stats = result.stats
        assert profile["rounds"]["rounds"] == stats.rounds
        assert profile["frontier"]["per_round"] == stats.frontier_per_round
        assert (
            profile["frontier"]["summary"]["count"]
            == len(stats.frontier_per_round)
            > 0
        )
        assert profile["frontier"]["summary"]["max"] == max(
            stats.frontier_per_round
        )
        assert profile["bucket_occupancy"]["summary"]["min"] >= 1
        assert profile["delta_buckets"]["delta"] == 3
        assert profile["schedule"]["priority_update"] == "lazy"
        assert profile["graph"]["num_vertices"] == graph.num_vertices
        assert profile["graph"]["avg_degree"] == pytest.approx(
            graph.num_edges / graph.num_vertices
        )

    def test_derived_ratios_bounded(self, graph):
        result, schedule = run_sssp(graph)
        updates = workload_profile(result.stats, schedule=schedule)["updates"]
        # Lazy buffering on a social graph discards a meaningful fraction
        # of buffered updates — that ratio is the axis the profile exists
        # to expose.
        assert 0.0 < updates["redundant_update_ratio"] <= 1.0
        assert updates["dedup_hits"] <= updates["buffer_appends"]
        # Each applied priority update costs at least one relaxation.
        assert 0.0 < updates["update_efficiency"] <= 1.0

    def test_eager_run_has_no_buffer_traffic(self, graph):
        result, schedule = run_sssp(graph, priority_update="eager_no_fusion")
        updates = workload_profile(result.stats, schedule=schedule)["updates"]
        assert updates["buffer_appends"] == 0
        assert updates["redundant_update_ratio"] == 0.0

    def test_relaxed_run_has_empty_per_round_series(self, graph):
        # The relaxed queue has no synchronized rounds, so the per-round
        # series stay empty and the summaries report count 0.
        from repro.algorithms.sssp import sssp

        source = int(np.argmax(graph.out_degrees()))
        result = sssp(
            graph, source, Schedule(delta=3, num_threads=4), relaxed_ordering=True
        )
        profile = workload_profile(result.stats)
        assert profile["frontier"]["per_round"] == []
        assert profile["frontier"]["summary"]["count"] == 0
        assert profile["bucket_occupancy"]["per_round"] == []

    def test_optional_context_defaults_to_none(self, graph):
        result, _ = run_sssp(graph)
        profile = workload_profile(result.stats)
        assert profile["schedule"] is None
        assert profile["graph"] is None
        assert profile["metrics"] is None


class TestDeterminismAndSerialization:
    def test_identical_runs_identical_profiles(self, graph):
        profiles = []
        for _ in range(2):
            result, schedule = run_sssp(graph)
            profiles.append(
                workload_profile(result.stats, schedule=schedule, graph=graph)
            )
        assert json.dumps(profiles[0], sort_keys=True) == json.dumps(
            profiles[1], sort_keys=True
        )

    def test_round_trips_through_disk(self, graph, tmp_path):
        metrics.reset_metrics()
        result, schedule = run_sssp(graph)
        profile = workload_profile(
            result.stats,
            schedule=schedule,
            graph=graph,
            metrics_snapshot=metrics.deterministic_snapshot(),
        )
        path = tmp_path / "workload.json"
        write_workload_profile(str(path), profile)
        loaded = json.loads(path.read_text())
        assert loaded == profile
        # The embedded registry snapshot carries the run's counters.
        assert "bucket.dequeues" in loaded["metrics"]
        metrics.reset_metrics()
