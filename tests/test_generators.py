"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    assign_log_weights,
    assign_uniform_weights,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    random_geometric,
    rmat,
    road_grid,
    star_graph,
)


class TestRmat:
    def test_size(self):
        graph = rmat(8, 8, seed=1)
        assert graph.num_vertices == 256
        # Dedup and self-loop removal shrink the raw 2048 edges.
        assert 0 < graph.num_edges <= 2048

    def test_deterministic(self):
        a = rmat(7, 8, seed=5)
        b = rmat(7, 8, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_seed_changes_graph(self):
        a = rmat(7, 8, seed=5)
        b = rmat(7, 8, seed=6)
        assert not (
            a.num_edges == b.num_edges and np.array_equal(a.indices, b.indices)
        )

    def test_heavy_tail(self):
        graph = rmat(11, 16, seed=1)
        degrees = graph.out_degrees()
        # Skewed distribution: the max degree dwarfs the mean.
        assert degrees.max() > 10 * degrees.mean()

    def test_no_self_loops(self):
        graph = rmat(8, 8, seed=2)
        sources, dests, _ = graph.edge_list()
        assert not np.any(sources == dests)

    def test_weight_range(self):
        graph = rmat(8, 8, seed=1, weights=(1, 50))
        assert graph.weights.min() >= 1
        assert graph.weights.max() < 50

    def test_unweighted(self):
        graph = rmat(6, 4, seed=1, weights=None)
        assert np.all(graph.weights == 1)

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            rmat(-1, 8)
        with pytest.raises(GraphError):
            rmat(4, 8, a=0.5, b=0.5, c=0.5)


class TestRoadGrid:
    def test_size_and_symmetry(self):
        graph = road_grid(10, 12, seed=2)
        assert graph.num_vertices == 120
        assert graph.is_symmetric()

    def test_has_coordinates(self):
        graph = road_grid(5, 5, seed=1)
        assert graph.has_coordinates
        assert graph.coordinates.shape == (25, 2)

    def test_connected(self):
        graph = road_grid(12, 9, seed=3)
        # BFS from 0 must reach everything (spanning tree edges kept).
        seen = np.zeros(graph.num_vertices, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            v = stack.pop()
            for u in graph.out_neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
        assert seen.all()

    def test_weights_dominate_euclidean_distance(self):
        # Admissibility of the A* heuristic depends on this.
        graph = road_grid(8, 8, seed=4)
        sources, dests, weights = graph.edge_list()
        deltas = graph.coordinates[sources] - graph.coordinates[dests]
        euclid = np.hypot(deltas[:, 0], deltas[:, 1])
        assert np.all(weights >= euclid - 1e-9)

    def test_large_diameter(self):
        graph = road_grid(20, 20, seed=5)
        # Unweighted BFS depth from a corner is on the order of rows+cols.
        depth = _bfs_depth(graph, 0)
        assert depth >= 20

    def test_deterministic(self):
        a = road_grid(6, 7, seed=9)
        b = road_grid(6, 7, seed=9)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.coordinates, b.coordinates)

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            road_grid(0, 5)


class TestOtherGenerators:
    def test_erdos_renyi(self):
        graph = erdos_renyi(100, 500, seed=1)
        assert graph.num_vertices == 100
        assert 0 < graph.num_edges <= 500

    def test_random_geometric_symmetric_with_coords(self):
        graph = random_geometric(200, 0.12, seed=3)
        assert graph.is_symmetric()
        assert graph.has_coordinates

    def test_path_graph(self):
        graph = path_graph(4, weight=3)
        assert graph.num_edges == 3
        assert graph.out_neighbors(1).tolist() == [2]

    def test_path_graph_symmetric(self):
        graph = path_graph(4, symmetric=True)
        assert graph.is_symmetric()
        assert graph.num_edges == 6

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert graph.out_neighbors(4).tolist() == [0]

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.num_vertices == 7
        assert graph.out_degree(0) == 6
        assert graph.in_degree(0) == 6

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 20
        assert not np.any(graph.indices == np.repeat(np.arange(5), 4))


class TestWeightAssignment:
    def test_uniform(self):
        graph = assign_uniform_weights(path_graph(10), 5, 9, seed=1)
        assert graph.weights.min() >= 5
        assert graph.weights.max() < 9

    def test_log_weights_range(self):
        base = rmat(10, 8, seed=1)
        graph = assign_log_weights(base, seed=2)
        assert graph.weights.min() >= 1
        assert graph.weights.max() < max(2, int(np.log2(base.num_vertices)))

    def test_assignment_preserves_topology(self):
        base = rmat(8, 8, seed=1)
        graph = assign_uniform_weights(base, seed=3)
        assert np.array_equal(base.indices, graph.indices)
        assert np.array_equal(base.indptr, graph.indptr)


def _bfs_depth(graph, source) -> int:
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[source] = True
    frontier = [source]
    depth = 0
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.out_neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    nxt.append(int(u))
        if not nxt:
            break
        frontier = nxt
        depth += 1
    return depth
