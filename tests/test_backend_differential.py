"""Differential fuzzing: Python backend vs C++ backend vs oracle.

Each strategy's C++ program is compiled once and then driven over a family
of random graphs; its output must match both the Python backend's result
and the sequential oracle on every input.  This is the strongest
compiler-correctness check in the suite: the two code generators share only
the frontend and the plan.
"""

import os
import shutil
import subprocess

import numpy as np
import pytest

from repro.algorithms import dijkstra_reference, kcore_reference
from repro.backend import compile_program
from repro.graph import rmat, road_grid, save_edge_list
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule

GXX = shutil.which("g++")
pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(GXX is None, reason="g++ not available"),
]

SSSP_STRATEGIES = ("lazy", "eager_no_fusion", "eager_with_fusion")
KCORE_STRATEGIES = ("lazy", "lazy_constant_sum", "eager_no_fusion")


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("diff")


def build_binary(workdir, tag, program_name, schedule):
    program = compile_program(ALL_PROGRAMS[program_name], schedule, backend="cpp")
    cpp = workdir / f"{tag}.cpp"
    exe = workdir / tag
    cpp.write_text(program.source_text)
    subprocess.run(
        [GXX, "-O2", "-std=c++17", "-fopenmp", "-o", str(exe), str(cpp)],
        check=True,
        capture_output=True,
    )
    return exe


def run_binary(exe, workdir, graph, args):
    graph_file = workdir / "input.el"
    out_file = workdir / "output.txt"
    save_edge_list(graph, graph_file)
    env = dict(os.environ, REPRO_OUTPUT=str(out_file), OMP_NUM_THREADS="3")
    subprocess.run([str(exe), str(graph_file), *map(str, args)], check=True, env=env)
    vectors = {}
    for line in out_file.read_text().splitlines():
        parts = line.split()
        vectors[parts[0]] = np.array([int(x) for x in parts[1:]], dtype=np.int64)
    return vectors


@pytest.mark.parametrize("strategy", SSSP_STRATEGIES)
def test_sssp_differential_fuzz(workdir, strategy):
    schedule = Schedule(priority_update=strategy, delta=8, num_threads=2)
    exe = build_binary(workdir, f"sssp_{strategy}", "sssp", schedule)
    python_program = compile_program(ALL_PROGRAMS["sssp"], schedule)
    for seed in range(6):
        graph = rmat(7, 6, seed=seed)
        source = int(np.argmax(graph.out_degrees()))
        oracle = dijkstra_reference(graph, source)
        cpp_vectors = run_binary(exe, workdir, graph, [source])
        python_run = python_program.run(["sssp", "-", str(source)], graph=graph)
        assert np.array_equal(cpp_vectors["dist"], oracle), (strategy, seed)
        assert np.array_equal(python_run.vector("dist"), oracle), (strategy, seed)


@pytest.mark.parametrize("strategy", KCORE_STRATEGIES)
def test_kcore_differential_fuzz(workdir, strategy):
    schedule = Schedule(priority_update=strategy, num_threads=2)
    exe = build_binary(workdir, f"kcore_{strategy}", "kcore", schedule)
    python_program = compile_program(ALL_PROGRAMS["kcore"], schedule)
    for seed in range(6):
        graph = rmat(6, 6, seed=100 + seed).symmetrized()
        oracle = kcore_reference(graph)
        cpp_vectors = run_binary(exe, workdir, graph, [])
        python_run = python_program.run(["kcore", "-"], graph=graph)
        assert np.array_equal(cpp_vectors["D"], oracle), (strategy, seed)
        assert np.array_equal(python_run.vector("D"), oracle), (strategy, seed)


def test_ppsp_differential_on_roads(workdir):
    schedule = Schedule(priority_update="eager_with_fusion", delta=256, num_threads=2)
    exe = build_binary(workdir, "ppsp_fused", "ppsp", schedule)
    python_program = compile_program(ALL_PROGRAMS["ppsp"], schedule)
    for seed in range(4):
        graph = road_grid(9, 11, seed=seed)
        oracle = dijkstra_reference(graph, 0)
        target = graph.num_vertices - 1
        cpp_vectors = run_binary(exe, workdir, graph, [0, target])
        python_run = python_program.run(["ppsp", "-", "0", str(target)], graph=graph)
        assert cpp_vectors["dist"][target] == oracle[target], seed
        assert int(python_run.vector("dist")[target]) == oracle[target], seed
