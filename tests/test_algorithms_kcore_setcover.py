"""Correctness and behaviour tests for k-core and SetCover (direct API)."""

import numpy as np
import pytest

from repro.algorithms import (
    greedy_setcover_reference,
    kcore,
    kcore_reference,
    setcover,
    unordered_kcore,
)
from repro.errors import GraphError, SchedulingError
from repro.graph import complete_graph, from_edges, path_graph, rmat, star_graph
from repro.midend import Schedule

KCORE_STRATEGIES = ["lazy_constant_sum", "lazy", "eager_no_fusion"]


@pytest.fixture(scope="module")
def symmetric():
    graph = rmat(10, 16, seed=3).symmetrized()
    return graph, kcore_reference(graph)


class TestKCore:
    @pytest.mark.parametrize("strategy", KCORE_STRATEGIES)
    def test_matches_reference(self, symmetric, strategy):
        graph, reference = symmetric
        result = kcore(graph, Schedule(priority_update=strategy, num_threads=4))
        assert np.array_equal(result.coreness, reference)

    def test_clique_coreness(self):
        graph = complete_graph(6)
        result = kcore(graph)
        assert np.all(result.coreness == 5)
        assert result.degeneracy == 5

    def test_path_coreness(self):
        graph = path_graph(5, symmetric=True)
        result = kcore(graph)
        assert np.all(result.coreness == 1)

    def test_star_coreness(self):
        graph = star_graph(10)
        result = kcore(graph)
        assert np.all(result.coreness == 1)

    def test_isolated_vertices(self):
        graph = from_edges(4, [(0, 1), (1, 0)])
        result = kcore(graph)
        assert result.coreness.tolist() == [1, 1, 0, 0]

    def test_clique_plus_tail(self):
        # A 4-clique with a pendant path: clique coreness 3, path coreness 1.
        edges = []
        for u in range(4):
            for v in range(4):
                if u != v:
                    edges.append((u, v))
        edges += [(3, 4), (4, 3), (4, 5), (5, 4)]
        graph = from_edges(6, edges)
        result = kcore(graph)
        assert result.coreness.tolist() == [3, 3, 3, 3, 1, 1]

    def test_coarsening_rejected(self, symmetric):
        graph, _ = symmetric
        with pytest.raises(SchedulingError):
            kcore(graph, Schedule(priority_update="lazy", delta=4))

    def test_fusion_rejected(self, symmetric):
        graph, _ = symmetric
        with pytest.raises(SchedulingError):
            kcore(graph, Schedule(priority_update="eager_with_fusion"))

    def test_histogram_avoids_atomics(self, symmetric):
        graph, _ = symmetric
        histogram = kcore(graph, Schedule(priority_update="lazy_constant_sum"))
        plain = kcore(graph, Schedule(priority_update="lazy"))
        assert histogram.stats.atomic_ops == 0
        assert plain.stats.atomic_ops > 0
        assert histogram.stats.histogram_updates > 0

    def test_eager_pays_more_bucket_insertions(self, symmetric):
        graph, _ = symmetric
        eager = kcore(graph, Schedule(priority_update="eager_no_fusion"))
        lazy = kcore(graph, Schedule(priority_update="lazy_constant_sum"))
        # The Table 7 effect: every unit decrement is an eager bucket move.
        assert eager.stats.bucket_inserts > lazy.stats.bucket_inserts

    def test_unordered_matches_but_works_harder(self, symmetric):
        graph, reference = symmetric
        unordered = unordered_kcore(graph, num_threads=4)
        assert np.array_equal(unordered.coreness, reference)
        ordered = kcore(graph)
        assert unordered.stats.total_work > ordered.stats.total_work


class TestSetCover:
    def test_full_coverage(self, symmetric):
        graph, _ = symmetric
        result = setcover(graph, seed=1)
        assert result.fully_covered
        # Every chosen set is a valid vertex.
        assert result.cover.min() >= 0
        assert result.cover.max() < graph.num_vertices

    def test_cover_actually_covers(self, symmetric):
        graph, _ = symmetric
        result = setcover(graph, seed=1)
        covered = np.zeros(graph.num_vertices, dtype=bool)
        for chosen in result.cover.tolist():
            covered[chosen] = True
            covered[graph.out_neighbors(chosen)] = True
        assert covered.all()

    def test_quality_close_to_greedy(self, symmetric):
        graph, _ = symmetric
        result = setcover(graph, seed=1)
        greedy = greedy_setcover_reference(graph)
        assert result.cover_size <= 2 * greedy.size

    def test_deterministic_given_seed(self, symmetric):
        graph, _ = symmetric
        a = setcover(graph, seed=5)
        b = setcover(graph, seed=5)
        assert np.array_equal(a.cover, b.cover)

    def test_star_graph_cover_is_center(self):
        graph = star_graph(12)
        result = setcover(graph, seed=0)
        # The hub covers everything; the cover should be exactly {0}.
        assert result.cover.tolist() == [0]

    def test_rebucketing_happens(self, symmetric):
        graph, _ = symmetric
        result = setcover(graph, seed=1)
        # Lazy re-bucketing traffic is the defining workload property.
        assert result.stats.buffer_appends > 0
        assert result.stats.rounds > 1

    def test_eager_rejected(self, symmetric):
        graph, _ = symmetric
        with pytest.raises(SchedulingError):
            setcover(graph, Schedule(priority_update="eager_no_fusion"))

    def test_coarsening_rejected(self, symmetric):
        graph, _ = symmetric
        with pytest.raises(SchedulingError):
            setcover(graph, Schedule(priority_update="lazy", delta=2))

    def test_invalid_retention(self, symmetric):
        graph, _ = symmetric
        with pytest.raises(GraphError):
            setcover(graph, retention=0.0)

    def test_empty_graph(self):
        graph = from_edges(0, [])
        result = setcover(graph)
        assert result.cover_size == 0
        assert result.fully_covered
