"""Tests for the C++ backend.

Structural tests verify the generated source reproduces Figure 9's shapes;
when a C++ compiler is available the generated programs are compiled with
``g++ -O2 -std=c++17 -fopenmp``, run on real graphs, and their outputs are
compared against the Python reference oracles (a full differential test of
the two backends).
"""

import os
import shutil
import subprocess

import numpy as np
import pytest

from repro.algorithms import dijkstra_reference, kcore_reference
from repro.backend import compile_program
from repro.errors import CompileError
from repro.graph import rmat, road_grid, save_edge_list
from repro.lang import ALL_PROGRAMS
from repro.midend import Schedule

GXX = shutil.which("g++")
needs_gxx = pytest.mark.skipif(GXX is None, reason="g++ not available")

pytestmark = pytest.mark.slow


def generate(name: str, schedule: Schedule) -> str:
    return compile_program(ALL_PROGRAMS[name], schedule, backend="cpp").source_text


class TestGeneratedStructure:
    def test_lazy_sparsepush_shape(self):
        text = generate("sssp", Schedule(priority_update="lazy", delta=4))
        # Figure 9(a): lazy queue, atomics, dedup-flagged buffering.
        assert "LazyPriorityQueue *pq" in text
        assert "new LazyPriorityQueue(dist.data()" in text
        assert "atomicWriteMin(&dist[dst]" in text
        assert "__tracking_var" in text
        assert "pq->bufferVertex(dst)" in text
        assert "while ((pq->finished() == false))" in text

    def test_lazy_densepull_shape(self):
        text = generate(
            "sssp",
            Schedule(priority_update="lazy", delta=4, direction="DensePull"),
        )
        # Figure 9(b): transpose traversal, no atomics on the destination.
        assert "TransposeGraph" in text
        assert "__frontier_map" in text
        generated = text.split("end embedded runtime")[1]
        assert "atomicWriteMin" not in generated

    def test_eager_shape(self):
        text = generate("sssp", Schedule(priority_update="eager_no_fusion", delta=4))
        # Figure 9(c): parallel region, thread-local bins, two-slot frontier.
        assert "#pragma omp parallel" in text
        assert "local_bins" in text
        assert "shared_indexes" in text
        assert "atomicWriteMin(&dist[dst]" in text
        assert "new LazyPriorityQueue" not in text
        assert "bucket fusion" not in text

    def test_fusion_adds_inner_while(self):
        fused = generate("sssp", Schedule(priority_update="eager_with_fusion", delta=4))
        assert "bucket fusion (Figure 7)" in fused
        assert "local_bins[curr_bin_index].size() < 1000" in fused

    def test_histogram_shape(self):
        text = generate("kcore", Schedule(priority_update="lazy_constant_sum"))
        assert "apply_f_transformed(NodeID vertex, int64_t count)" in text
        assert "__touched" in text
        assert "__atomic_fetch_add(&__count" in text

    def test_ppsp_stop_condition_emitted(self):
        text = generate("ppsp", Schedule(priority_update="eager_no_fusion", delta=4))
        assert "stop_flag = true" in text
        assert "(int64_t)next_bin_index * delta" in text

    def test_kcore_eager_uses_processed_flags(self):
        text = generate("kcore", Schedule(priority_update="eager_no_fusion"))
        assert "CASByte(&processed[u], 0, 1)" in text
        assert "atomicAddClamped" in text

    def test_extern_programs_rejected(self):
        with pytest.raises(CompileError):
            generate("astar", Schedule())
        with pytest.raises(CompileError):
            generate("setcover", Schedule(priority_update="lazy"))

    def test_output_dump_present(self):
        text = generate("sssp", Schedule())
        assert 'dumpVector(__out, "dist", dist);' in text


@needs_gxx
class TestCompileAndRun:
    """Differential tests: generated C++ vs the reference oracles."""

    @pytest.fixture(scope="class")
    def toolchain(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cpp")

    def _build_and_run(self, tmp, tag, name, schedule, graph, args):
        program = compile_program(ALL_PROGRAMS[name], schedule, backend="cpp")
        cpp = tmp / f"{tag}.cpp"
        exe = tmp / tag
        out = tmp / f"{tag}.out"
        graph_file = tmp / f"{tag}.el"
        save_edge_list(graph, graph_file)
        cpp.write_text(program.source_text)
        subprocess.run(
            [GXX, "-O2", "-std=c++17", "-fopenmp", "-o", str(exe), str(cpp)],
            check=True,
            capture_output=True,
        )
        env = dict(os.environ, REPRO_OUTPUT=str(out), OMP_NUM_THREADS="3")
        subprocess.run(
            [str(exe), str(graph_file), *map(str, args)], check=True, env=env
        )
        vectors = {}
        for line in out.read_text().splitlines():
            parts = line.split()
            vectors[parts[0]] = np.array([int(x) for x in parts[1:]], dtype=np.int64)
        return vectors

    @pytest.mark.parametrize(
        "strategy", ["lazy", "eager_no_fusion", "eager_with_fusion"]
    )
    def test_sssp(self, toolchain, strategy):
        graph = rmat(8, 10, seed=3)
        source = int(np.argmax(graph.out_degrees()))
        reference = dijkstra_reference(graph, source)
        vectors = self._build_and_run(
            toolchain,
            f"sssp_{strategy}",
            "sssp",
            Schedule(priority_update=strategy, delta=16),
            graph,
            [source],
        )
        assert np.array_equal(vectors["dist"], reference)

    def test_sssp_densepull(self, toolchain):
        graph = rmat(8, 10, seed=5)
        source = int(np.argmax(graph.out_degrees()))
        reference = dijkstra_reference(graph, source)
        vectors = self._build_and_run(
            toolchain,
            "sssp_pull",
            "sssp",
            Schedule(priority_update="lazy", delta=16, direction="DensePull"),
            graph,
            [source],
        )
        assert np.array_equal(vectors["dist"], reference)

    @pytest.mark.parametrize("strategy", ["lazy", "eager_with_fusion"])
    def test_ppsp(self, toolchain, strategy):
        graph = road_grid(14, 16, seed=4)
        reference = dijkstra_reference(graph, 0)
        target = graph.num_vertices - 1
        vectors = self._build_and_run(
            toolchain,
            f"ppsp_{strategy}",
            "ppsp",
            Schedule(priority_update=strategy, delta=512),
            graph,
            [0, target],
        )
        assert vectors["dist"][target] == reference[target]

    @pytest.mark.parametrize(
        "strategy", ["lazy", "lazy_constant_sum", "eager_no_fusion"]
    )
    def test_kcore(self, toolchain, strategy):
        graph = rmat(8, 10, seed=3).symmetrized()
        reference = kcore_reference(graph)
        vectors = self._build_and_run(
            toolchain,
            f"kcore_{strategy}",
            "kcore",
            Schedule(priority_update=strategy),
            graph,
            [],
        )
        assert np.array_equal(vectors["D"], reference)
