"""Unit tests for the bucketing substrate (lazy, eager, relaxed queues)."""

import numpy as np
import pytest

from repro.buckets import (
    EagerBucketQueue,
    LazyBucketQueue,
    PriorityDirection,
    RelaxedPriorityQueue,
)
from repro.errors import PriorityQueueError
from repro.graph.properties import INT_MAX


def make_priorities(values):
    return np.array(values, dtype=np.int64)


class TestPriorityDirection:
    def test_parse_strings(self):
        assert PriorityDirection.parse("lower_first") is PriorityDirection.LOWER_FIRST
        assert PriorityDirection.parse("higher_first") is PriorityDirection.HIGHER_FIRST

    def test_parse_passthrough(self):
        assert (
            PriorityDirection.parse(PriorityDirection.LOWER_FIRST)
            is PriorityDirection.LOWER_FIRST
        )

    def test_parse_rejects_unknown(self):
        with pytest.raises(PriorityQueueError):
            PriorityDirection.parse("middle_first")


class TestLazyBucketQueue:
    def test_initial_population_from_non_null(self):
        priorities = make_priorities([0, INT_MAX, 2, 1])
        queue = LazyBucketQueue(priorities)
        assert queue.dequeue_ready_set().tolist() == [0]
        assert queue.get_current_priority() == 0
        assert queue.dequeue_ready_set().tolist() == [3]
        assert queue.dequeue_ready_set().tolist() == [2]
        assert queue.finished()

    def test_explicit_initial_vertices(self):
        priorities = make_priorities([0, 5, 5])
        queue = LazyBucketQueue(priorities, initial_vertices=[0])
        assert queue.dequeue_ready_set().tolist() == [0]
        assert queue.dequeue_ready_set().size == 0

    def test_update_min_inserts_lazily(self):
        priorities = make_priorities([0, INT_MAX])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()
        assert queue.update_priority_min(1, 3)
        assert not queue.finished()
        assert queue.dequeue_ready_set().tolist() == [1]
        assert queue.get_current_priority() == 3

    def test_update_min_noop_when_not_smaller(self):
        priorities = make_priorities([0, 4])
        queue = LazyBucketQueue(priorities)
        assert not queue.update_priority_min(1, 4)
        assert not queue.update_priority_min(1, 9)
        assert priorities[1] == 4

    def test_final_priority_determines_bucket(self):
        # Two updates before the flush: only the final value counts.
        priorities = make_priorities([0, INT_MAX])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 9)
        queue.update_priority_min(1, 2)
        bucket = queue.dequeue_ready_set()
        assert bucket.tolist() == [1]
        assert queue.get_current_priority() == 2
        # Exactly one bucket insertion despite two updates (lazy dedup);
        # the initial vertex accounts for the other insert.
        assert queue.stats.bucket_inserts == 2

    def test_dedup_hits_counted(self):
        priorities = make_priorities([0, INT_MAX])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 9)
        queue.update_priority_min(1, 2)
        assert queue.stats.dedup_hits == 1

    def test_delta_coarsening_groups_values(self):
        priorities = make_priorities([0, 3, 5, 11])
        queue = LazyBucketQueue(priorities, delta=4)
        assert queue.dequeue_ready_set().tolist() == [0, 1]
        assert queue.get_current_priority() == 0
        assert queue.dequeue_ready_set().tolist() == [2]
        assert queue.get_current_priority() == 4
        assert queue.dequeue_ready_set().tolist() == [3]

    def test_coarsening_disallowed(self):
        with pytest.raises(PriorityQueueError):
            LazyBucketQueue(make_priorities([0]), delta=4, allow_coarsening=False)

    def test_overflow_rebucketing(self):
        # Window of 2 buckets; far-away priorities land in overflow and are
        # recovered when the window is exhausted.
        priorities = make_priorities([0, 500, 1000])
        queue = LazyBucketQueue(priorities, num_open_buckets=2)
        seen = []
        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0:
                break
            seen.extend(bucket.tolist())
        assert seen == [0, 1, 2]

    def test_stale_entries_filtered(self):
        priorities = make_priorities([0, 10])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 8)  # buffered for bucket 8
        queue.update_priority_min(1, 2)  # same buffer entry, final bucket 2
        assert queue.dequeue_ready_set().tolist() == [1]
        # No second appearance of vertex 1 at bucket 8.
        assert queue.dequeue_ready_set().size == 0

    def test_same_bucket_reprocessing(self):
        # SSSP pattern: a vertex whose priority lands in the current bucket
        # is processed in a later round of the same bucket.
        priorities = make_priorities([0, INT_MAX])
        queue = LazyBucketQueue(priorities, delta=10)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 5)  # same coarsened bucket as 0
        bucket = queue.dequeue_ready_set()
        assert bucket.tolist() == [1]
        assert queue.get_current_priority() == 0

    def test_update_sum_with_threshold(self):
        priorities = make_priorities([5, 5])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()
        assert queue.update_priority_sum(1, -3, min_threshold=5)is False or priorities[1] == 5
        # Clamped at the threshold: no change.
        assert priorities[1] == 5

    def test_update_sum_sign_pinned(self):
        priorities = make_priorities([5, 9])
        queue = LazyBucketQueue(priorities)
        queue.update_priority_sum(1, -2)
        with pytest.raises(PriorityQueueError):
            queue.update_priority_sum(1, 3)

    def test_update_sum_null_rejected(self):
        priorities = make_priorities([0, INT_MAX])
        queue = LazyBucketQueue(priorities)
        with pytest.raises(PriorityQueueError):
            queue.update_priority_sum(1, -1)

    def test_updates_to_finalized_vertices_ignored(self):
        priorities = make_priorities([0, 5])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()  # processes vertex 0 at priority 0
        queue.dequeue_ready_set()  # vertex 1 at priority 5; 0 now finalized
        assert not queue.update_priority_sum(0, -1, min_threshold=0)
        assert priorities[0] == 0

    def test_finished_vertex(self):
        priorities = make_priorities([0, 5])
        queue = LazyBucketQueue(priorities)
        assert not queue.finished_vertex(0)
        queue.dequeue_ready_set()
        queue.dequeue_ready_set()
        assert queue.finished_vertex(0)
        assert not queue.finished_vertex(1)  # still in the current bucket

    def test_higher_first_processes_descending(self):
        priorities = make_priorities([1, 7, 4])
        queue = LazyBucketQueue(priorities, direction="higher_first")
        order = []
        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0:
                break
            order.append(queue.get_current_priority())
        assert order == [7, 4, 1]

    def test_remove_batch(self):
        priorities = make_priorities([1, 2, 3])
        queue = LazyBucketQueue(priorities)
        queue.remove_batch(np.array([1]))
        seen = []
        while True:
            bucket = queue.dequeue_ready_set()
            if bucket.size == 0:
                break
            seen.extend(bucket.tolist())
        assert seen == [0, 2]

    def test_get_current_priority_before_dequeue_rejected(self):
        queue = LazyBucketQueue(make_priorities([0]))
        with pytest.raises(PriorityQueueError):
            queue.get_current_priority()

    def test_buffer_changed_batch_dedups(self):
        priorities = make_priorities([0, 4, 4])
        queue = LazyBucketQueue(priorities, initial_vertices=[0])
        appended = queue.buffer_changed_batch(np.array([1, 2, 1]))
        assert appended == 2
        appended_again = queue.buffer_changed_batch(np.array([1]))
        assert appended_again == 0
        assert queue.stats.dedup_hits >= 1

    def test_apply_histogram_updates_skips_finalized(self):
        priorities = make_priorities([0, 3, 5])
        queue = LazyBucketQueue(priorities)
        queue.dequeue_ready_set()  # bucket 0
        queue.dequeue_ready_set()  # bucket 3: vertex 0 finalized
        changed = queue.apply_histogram_updates(
            np.array([0, 2]), np.array([1, 1]), -1, 3
        )
        assert changed.tolist() == [2]
        assert priorities[0] == 0  # untouched
        assert priorities[2] == 4

    def test_invalid_configs(self):
        with pytest.raises(PriorityQueueError):
            LazyBucketQueue(make_priorities([0]), num_open_buckets=0)
        with pytest.raises(PriorityQueueError):
            LazyBucketQueue(make_priorities([0]), delta=0)
        with pytest.raises(PriorityQueueError):
            LazyBucketQueue(np.array([0.5, 1.5]))  # not int64


class TestEagerBucketQueue:
    def test_immediate_insertion(self):
        priorities = make_priorities([0, INT_MAX])
        queue = EagerBucketQueue(priorities, num_threads=2)
        queue.dequeue_ready_set()
        queue.set_thread(1)
        assert queue.update_priority_min(1, 4)
        assert queue.stats.bucket_inserts >= 2  # initial + update
        assert queue.dequeue_ready_set().tolist() == [1]

    def test_every_update_costs_an_insert(self):
        # Unlike lazy, eager pays one bucket insertion per improvement.
        priorities = make_priorities([0, INT_MAX])
        queue = EagerBucketQueue(priorities, num_threads=1)
        queue.dequeue_ready_set()
        base = queue.stats.bucket_inserts
        queue.update_priority_min(1, 9)
        queue.update_priority_min(1, 4)
        assert queue.stats.bucket_inserts == base + 2

    def test_stale_copies_filtered_at_dequeue(self):
        priorities = make_priorities([0, INT_MAX])
        queue = EagerBucketQueue(priorities, num_threads=1)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 9)
        queue.update_priority_min(1, 4)
        assert queue.dequeue_ready_set().tolist() == [1]  # at bucket 4
        assert queue.dequeue_ready_set().size == 0  # bucket-9 copy is stale

    def test_thread_local_bins_gathered_globally(self):
        priorities = make_priorities([0, INT_MAX, INT_MAX])
        queue = EagerBucketQueue(priorities, num_threads=2)
        queue.dequeue_ready_set()
        queue.set_thread(0)
        queue.update_priority_min(1, 5)
        queue.set_thread(1)
        queue.update_priority_min(2, 5)
        assert queue.dequeue_ready_set().tolist() == [1, 2]

    def test_pop_local_bucket_respects_threshold(self):
        priorities = make_priorities([0, INT_MAX, INT_MAX, INT_MAX])
        queue = EagerBucketQueue(priorities, delta=10, num_threads=1)
        queue.dequeue_ready_set()
        for vertex in (1, 2, 3):
            queue.update_priority_min(vertex, 5)  # current bucket
        # Local bucket of size 3 is too large for threshold 3.
        assert queue.pop_local_bucket(0, max_size=3) is None
        popped = queue.pop_local_bucket(0, max_size=10)
        assert popped.tolist() == [1, 2, 3]
        # Bucket is consumed.
        assert queue.pop_local_bucket(0, max_size=10) is None

    def test_pop_local_bucket_before_dequeue_rejected(self):
        queue = EagerBucketQueue(make_priorities([0]), num_threads=1)
        with pytest.raises(PriorityQueueError):
            queue.pop_local_bucket(0, 10)

    def test_priority_inversion_clamped(self):
        priorities = make_priorities([0, 25, 7])
        queue = EagerBucketQueue(priorities, delta=10, num_threads=1)
        queue.dequeue_ready_set()  # bucket 0 (vertices 0 and 2)
        queue.dequeue_ready_set()  # bucket 2 (vertex 1)
        # An update mapping below the current bucket is clamped into it.
        queue.update_priority_min(1, 5)
        assert queue.priority_inversions == 1
        assert queue.dequeue_ready_set().tolist() == [1]

    def test_insert_batch_at(self):
        priorities = make_priorities([5, 5, 5])
        queue = EagerBucketQueue(priorities, num_threads=1, initial_vertices=[])
        queue.insert_batch_at(0, np.array([0, 1]), np.array([5, 5]))
        assert queue.dequeue_ready_set().tolist() == [0, 1]

    def test_set_thread_bounds(self):
        queue = EagerBucketQueue(make_priorities([0]), num_threads=2)
        with pytest.raises(PriorityQueueError):
            queue.set_thread(2)

    def test_update_sum_moves_single_bucket(self):
        priorities = make_priorities([1, 4])
        queue = EagerBucketQueue(priorities, num_threads=1)
        queue.dequeue_ready_set()  # bucket 1
        queue.update_priority_sum(1, -1, min_threshold=1)
        assert priorities[1] == 3
        assert queue.dequeue_ready_set().tolist() == [1]
        assert queue.get_current_priority() == 3


class TestRelaxedPriorityQueue:
    def test_processes_approximately_in_order(self):
        priorities = make_priorities([5, 1, 3])
        queue = RelaxedPriorityQueue(priorities, slack=1, chunk_size=1)
        order = [queue.dequeue_ready_set().tolist()[0] for _ in range(3)]
        assert order == [1, 2, 0]

    def test_slack_mixes_buckets(self):
        priorities = make_priorities([0, 1, 0, 1])
        queue = RelaxedPriorityQueue(priorities, slack=2, chunk_size=10)
        chunk = queue.dequeue_ready_set()
        assert sorted(chunk.tolist()) == [0, 1, 2, 3]

    def test_no_stale_filtering(self):
        # The relaxed queue processes stale entries — the lost work-
        # efficiency of approximate ordering.
        priorities = make_priorities([0, INT_MAX])
        queue = RelaxedPriorityQueue(priorities, slack=1, chunk_size=10)
        queue.dequeue_ready_set()
        queue.update_priority_min(1, 9)
        queue.update_priority_min(1, 4)
        first = queue.dequeue_ready_set()
        second = queue.dequeue_ready_set()
        assert first.tolist() == [1] and second.tolist() == [1]

    def test_sum_updates_rejected(self):
        queue = RelaxedPriorityQueue(make_priorities([0]))
        with pytest.raises(PriorityQueueError):
            queue.update_priority_sum(0, -1)

    def test_invalid_config(self):
        with pytest.raises(PriorityQueueError):
            RelaxedPriorityQueue(make_priorities([0]), slack=0)
        with pytest.raises(PriorityQueueError):
            RelaxedPriorityQueue(make_priorities([0]), chunk_size=0)


class TestUpdatePriorityMax:
    def test_lazy_scalar_max_updates(self):
        # higher_first queue: maxima only increase, processed from the top.
        priorities = make_priorities([10, 3, 7])
        queue = LazyBucketQueue(priorities, direction="higher_first")
        assert queue.dequeue_ready_set().tolist() == [0]
        assert queue.update_priority_max(1, 9)
        assert not queue.update_priority_max(1, 4)  # not larger
        assert priorities[1] == 9
        assert queue.dequeue_ready_set().tolist() == [1]
        assert queue.get_current_priority() == 9

    def test_eager_scalar_max_updates(self):
        priorities = make_priorities([10, 3])
        queue = EagerBucketQueue(priorities, direction="higher_first", num_threads=1)
        queue.dequeue_ready_set()
        assert queue.update_priority_max(1, 8)
        assert queue.dequeue_ready_set().tolist() == [1]

    def test_max_from_null_priority(self):
        from repro.buckets import NULL_PRIORITY_HIGHER

        priorities = make_priorities([5, NULL_PRIORITY_HIGHER])
        queue = LazyBucketQueue(priorities, direction="higher_first")
        queue.dequeue_ready_set()
        assert queue.update_priority_max(1, 2)
        assert priorities[1] == 2

    def test_value_of_order_roundtrip(self):
        priorities = make_priorities([0, 12])
        lower = LazyBucketQueue(priorities.copy(), delta=4)
        assert lower.value_of_order(lower.order_of_value(12)) == 12
        higher = LazyBucketQueue(
            priorities.copy(), delta=4, direction="higher_first"
        )
        assert higher.value_of_order(higher.order_of_value(12)) == 12
