"""Perf-regression attribution: phase profiles and ``repro trace-diff``.

The contract: injecting a slowdown into one phase of an otherwise
identical run must put that phase at the top of the diff, with the delta
it caused — that is what makes ``bench-check --attribute`` actionable.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    format_trace_diff,
    load_profile_document,
    phase_profile,
    trace_diff,
)

US = 1.0  # events below are already in microseconds


def span(name, cat, ts, dur, tid=1):
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts * US,
        "dur": dur * US,
        "pid": 1,
        "tid": tid,
        "args": {},
    }


def synthetic_events(reduce_us=200):
    """A run shape: program.run wrapping two advances and a reduce."""
    total = 100 + 300 + reduce_us + 300
    return [
        span("program.run", "runtime", 0, total),
        span("bucket.advance", "bucket", 100, 300),
        span("bucket.reduce", "bucket", 400, reduce_us),
        span("bucket.advance", "bucket", 400 + reduce_us, 300),
    ]


class TestPhaseProfile:
    def test_profile_shape_and_self_time(self):
        doc = phase_profile(synthetic_events())
        assert doc["schema"] == 1
        by_name = {p["name"]: p for p in doc["phases"]}
        assert by_name["bucket.advance"]["count"] == 2
        assert by_name["bucket.advance"]["self_us"] == 600
        assert by_name["bucket.reduce"]["self_us"] == 200
        # program.run's self time excludes its nested children.
        assert by_name["program.run"]["self_us"] == 100
        assert doc["wall_us"] == 900

    def test_load_accepts_all_three_shapes(self, tmp_path):
        chrome = {
            "traceEvents": synthetic_events(),
            "displayTimeUnit": "ms",
            "metadata": {},
        }
        profile = phase_profile(synthetic_events())
        bench_record = {"benchmark": "x", "speedup": 2.0, "phase_profile": profile}
        for payload in (chrome, profile, bench_record):
            doc = load_profile_document(payload)
            assert doc["wall_us"] == 900
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome))
        assert load_profile_document(str(path))["wall_us"] == 900

    def test_load_rejects_unknown_documents(self):
        with pytest.raises(ValueError, match="not a trace or profile"):
            load_profile_document({"something": "else"})


class TestTraceDiff:
    def test_injected_slowdown_attributed_to_its_phase(self):
        baseline = synthetic_events(reduce_us=200)
        slowed = synthetic_events(reduce_us=900)  # +700us in bucket.reduce
        diff = trace_diff(
            phase_profile(baseline), phase_profile(slowed)
        )
        top = diff["rows"][0]
        assert (top["cat"], top["name"]) == ("bucket", "bucket.reduce")
        assert top["delta_us"] == 700
        assert diff["wall_us"]["delta"] == 700
        # Other phases did not move.
        for row in diff["rows"][1:]:
            assert row["delta_us"] == 0

    def test_deltas_sum_to_wall_delta(self):
        diff = trace_diff(
            phase_profile(synthetic_events(200)),
            phase_profile(synthetic_events(650)),
        )
        assert sum(r["delta_us"] for r in diff["rows"]) == pytest.approx(
            diff["wall_us"]["delta"]
        )
        assert sum(r["delta_pct_of_wall"] for r in diff["rows"]) == pytest.approx(
            100.0 * diff["wall_us"]["delta"] / diff["wall_us"]["baseline"]
        )

    def test_phase_present_only_on_one_side(self):
        base = phase_profile(synthetic_events())
        fresh = phase_profile(
            synthetic_events() + [span("native.compile", "native", 900, 5000)]
        )
        diff = trace_diff(base, fresh)
        top = diff["rows"][0]
        assert top["name"] == "native.compile"
        assert top["baseline_self_us"] == 0
        assert top["delta_us"] == 5000

    def test_format_mentions_top_phase_and_wall(self):
        diff = trace_diff(
            phase_profile(synthetic_events(200)),
            phase_profile(synthetic_events(900)),
        )
        text = format_trace_diff(diff, top=2)
        assert "wall time:" in text
        assert "bucket:bucket.reduce" in text
        assert "more phases" in text  # truncation is announced


class TestCLI:
    def test_trace_diff_text_and_json(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(phase_profile(synthetic_events(200))))
        b.write_text(json.dumps(phase_profile(synthetic_events(800))))
        assert main(["trace-diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "bucket:bucket.reduce" in out.splitlines()[3]  # top row

        assert main(["trace-diff", str(a), str(b), "--format", "json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["rows"][0]["name"] == "bucket.reduce"
        assert diff["rows"][0]["delta_us"] == 600

    def test_trace_diff_on_real_traces(self, tmp_path, capsys):
        trace_a = tmp_path / "a.json"
        trace_b = tmp_path / "b.json"
        for path in (trace_a, trace_b):
            assert (
                main(["trace", "sssp", "--delta", "3", "--out", str(path)])
                == 0
            )
        capsys.readouterr()
        assert main(["trace-diff", str(trace_a), str(trace_b)]) == 0
        out = capsys.readouterr().out
        assert "wall time:" in out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["trace-diff", str(missing), str(missing)]) == 1
        assert "trace-diff" in capsys.readouterr().err
