"""Differential correctness harness for incremental recomputation.

Every test follows the same contract: converge a session, apply mutation
batches, and require the resumed vector to **bit-match a from-scratch
run** of the same algorithm under the same schedule — both a fresh
session over the mutated (overlay-carrying) graph and, where asserted, a
plain runner over a rebuilt clean CSR, so an overlay bug cannot hide by
affecting both sides identically.

Coverage axes:

- algorithm x bucketing strategy (sssp / wbfs / widest-path / k-core
  under lazy / eager / relaxed / histogram strategies),
- mutation kind (insert, delete, weight moves in both directions, mixed),
- batch size (single mutation up to 16 per batch),
- adversarial shapes (self-loops, parallel edges, zero-weight edges,
  disconnecting deletions, mutations at the source).

The I001 eligibility gate (schedules requesting incremental resume on
non-extremal programs) is tested at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import kcore as kcore_runner
from repro.algorithms import sssp as sssp_runner
from repro.algorithms import wbfs as wbfs_runner
from repro.algorithms import widest_path as widest_runner
from repro.errors import SchedulingError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.mutations import Mutation, parse_mutation_script
from repro.incremental import IncrementalSession
from repro.lang.programs import ALL_PROGRAMS
from repro.midend.analysis.diagnostics import Severity, lint_program
from repro.midend.schedule import Schedule

# ---------------------------------------------------------------------------
# The strategy matrix: (algorithm, label) -> session kwargs
# ---------------------------------------------------------------------------

STRATEGIES: dict[tuple[str, str], dict] = {
    ("sssp", "lazy"): dict(schedule=Schedule(priority_update="lazy", delta=3)),
    ("sssp", "eager"): dict(
        schedule=Schedule(priority_update="eager_no_fusion", delta=3)
    ),
    ("sssp", "relaxed"): dict(
        schedule=Schedule(
            priority_update="eager_with_fusion", delta=3, bucket_fusion_threshold=64
        ),
        relaxed_ordering=True,
    ),
    ("wbfs", "lazy"): dict(schedule=Schedule(priority_update="lazy", delta=1)),
    ("wbfs", "eager"): dict(
        schedule=Schedule(priority_update="eager_no_fusion", delta=1)
    ),
    ("widest_path", "lazy"): dict(
        schedule=Schedule(priority_update="lazy", delta=8)
    ),
    ("widest_path", "fusion"): dict(
        schedule=Schedule(priority_update="eager_with_fusion", delta=8)
    ),
    ("kcore", "lazy"): dict(schedule=Schedule(priority_update="lazy", delta=1)),
    ("kcore", "eager"): dict(
        schedule=Schedule(priority_update="eager_no_fusion", delta=1)
    ),
    ("kcore", "histogram"): dict(
        schedule=Schedule(priority_update="lazy_constant_sum", delta=1)
    ),
}

SOURCE = 0


def make_graph(algorithm: str, seed: int = 3) -> CSRGraph:
    if algorithm == "kcore":
        return rmat(7, 8, seed=seed).symmetrized()
    if algorithm == "wbfs":
        return rmat(7, 8, seed=seed, weights=(1, 3))
    return rmat(7, 8, seed=seed, weights=(1, 9))


def make_session(algorithm: str, label: str, graph: CSRGraph) -> IncrementalSession:
    return IncrementalSession(
        graph, algorithm, source=SOURCE, **STRATEGIES[(algorithm, label)]
    )


def random_batch(
    rng: np.random.Generator,
    graph: CSRGraph,
    size: int,
    kinds: tuple[str, ...],
    unit_weights: bool,
    symmetric: bool,
) -> list[Mutation]:
    """A batch over live edges (for remove/update) and random pairs (add)."""
    sources, dests, _ = graph.edge_list()
    batch: list[Mutation] = []
    seen: set[tuple[int, int]] = set()
    n = graph.num_vertices
    while len(batch) < size:
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "add":
            weight = 1 if unit_weights else int(rng.integers(1, 10))
            batch.append(
                Mutation("add", int(rng.integers(n)), int(rng.integers(n)), weight)
            )
            continue
        i = int(rng.integers(sources.size))
        src, dst = int(sources[i]), int(dests[i])
        if (src, dst) in seen or (symmetric and (dst, src) in seen):
            continue
        seen.add((src, dst))
        if kind == "remove":
            batch.append(Mutation("remove", src, dst))
        else:
            batch.append(Mutation("update", src, dst, int(rng.integers(1, 10))))
    return batch


def rebuilt_clean_graph(graph: CSRGraph) -> CSRGraph:
    """A fresh CSR built from the mutated graph's edge list (no overlay)."""
    sources, dests, weights = graph.edge_list()
    return from_edges(
        graph.num_vertices,
        zip(sources.tolist(), dests.tolist(), weights.tolist()),
    )


def from_scratch(algorithm: str, label: str, graph: CSRGraph) -> np.ndarray:
    """Oracle: an independent converged run on the current graph."""
    oracle = make_session(algorithm, label, graph)
    return oracle.run().values


def plain_runner_values(algorithm: str, label: str, graph: CSRGraph) -> np.ndarray:
    """Second oracle: the non-incremental algorithm runner on a clean CSR."""
    kwargs = STRATEGIES[(algorithm, label)]
    schedule = kwargs["schedule"]
    if algorithm == "sssp":
        return sssp_runner(
            graph,
            SOURCE,
            schedule,
            relaxed_ordering=kwargs.get("relaxed_ordering", False),
        ).distances
    if algorithm == "wbfs":
        return wbfs_runner(graph, SOURCE, schedule).distances
    if algorithm == "widest_path":
        return widest_runner(graph, SOURCE, schedule).distances
    return kcore_runner(graph, schedule).coreness


# ---------------------------------------------------------------------------
# 1. The full matrix: algorithm x strategy, mixed batches, growing sizes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm,label", sorted(STRATEGIES), ids=lambda v: str(v)
)
def test_differential_matrix(algorithm: str, label: str) -> None:
    graph = make_graph(algorithm)
    unit = algorithm == "kcore"
    kinds = ("add", "remove") if unit else ("add", "remove", "update")
    session = make_session(algorithm, label, graph)
    session.run()
    rng = np.random.default_rng(11)
    for batch_no, size in enumerate((1, 4, 8, 16)):
        batch = random_batch(
            rng, session.graph, size, kinds, unit_weights=unit, symmetric=unit
        )
        result = session.apply(batch)
        expected = from_scratch(algorithm, label, session.graph)
        assert np.array_equal(result.values, expected), (
            f"{algorithm}/{label}: batch {batch_no} (size {size}) diverged "
            f"at vertices {np.flatnonzero(result.values != expected)[:10]}"
        )
        assert result.incremental
        assert result.vertices_touched <= session.graph.num_vertices
        assert np.array_equal(session.values, expected)


# ---------------------------------------------------------------------------
# 2. Single-kind batches: inserts only, deletes only, weight moves each way
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["sssp", "wbfs", "widest_path", "kcore"])
@pytest.mark.parametrize("kind", ["insert", "delete", "weight_up", "weight_down"])
def test_single_mutation_kinds(algorithm: str, kind: str) -> None:
    if algorithm == "kcore" and kind.startswith("weight"):
        pytest.skip("k-core is weight-agnostic; update batches are no-ops")
    label = "lazy"
    graph = make_graph(algorithm, seed=5)
    unit = algorithm == "kcore"
    session = make_session(algorithm, label, graph)
    session.run()
    rng = np.random.default_rng(23)
    for _ in range(4):
        sources, dests, weights = session.graph.edge_list()
        batch: list[Mutation] = []
        seen: set[tuple[int, int]] = set()
        while len(batch) < 5:
            if kind == "insert":
                weight = 1 if unit else int(rng.integers(1, 10))
                n = session.graph.num_vertices
                batch.append(
                    Mutation(
                        "add", int(rng.integers(n)), int(rng.integers(n)), weight
                    )
                )
                continue
            i = int(rng.integers(sources.size))
            src, dst = int(sources[i]), int(dests[i])
            if (src, dst) in seen or (unit and (dst, src) in seen):
                continue
            seen.add((src, dst))
            if kind == "delete":
                batch.append(Mutation("remove", src, dst))
            elif kind == "weight_up":
                batch.append(Mutation("update", src, dst, int(weights[i]) + 3))
            else:
                batch.append(
                    Mutation("update", src, dst, max(1, int(weights[i]) - 3))
                )
        result = session.apply(batch)
        expected = from_scratch(algorithm, label, session.graph)
        assert np.array_equal(result.values, expected), (
            f"{algorithm}/{kind} diverged at "
            f"{np.flatnonzero(result.values != expected)[:10]}"
        )


# ---------------------------------------------------------------------------
# 3. The rebuilt-graph oracle: overlay bugs cannot hide
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["sssp", "wbfs", "widest_path", "kcore"])
def test_matches_plain_runner_on_rebuilt_graph(algorithm: str) -> None:
    label = "lazy"
    graph = make_graph(algorithm, seed=9)
    unit = algorithm == "kcore"
    kinds = ("add", "remove") if unit else ("add", "remove", "update")
    session = make_session(algorithm, label, graph)
    session.run()
    rng = np.random.default_rng(41)
    for _ in range(3):
        batch = random_batch(
            rng, session.graph, 6, kinds, unit_weights=unit, symmetric=unit
        )
        result = session.apply(batch)
        clean = rebuilt_clean_graph(session.graph)
        expected = plain_runner_values(algorithm, label, clean)
        assert np.array_equal(result.values, expected), (
            f"{algorithm}: resumed vector disagrees with the plain runner "
            f"on a rebuilt graph at "
            f"{np.flatnonzero(result.values != expected)[:10]}"
        )


# ---------------------------------------------------------------------------
# 4. Adversarial shapes
# ---------------------------------------------------------------------------


def assert_batches_match(
    session: IncrementalSession, algorithm: str, label: str, batches
) -> None:
    for batch_no, batch in enumerate(batches):
        result = session.apply(list(batch))
        expected = from_scratch(algorithm, label, session.graph)
        assert np.array_equal(result.values, expected), (
            f"batch {batch_no} diverged at "
            f"{np.flatnonzero(result.values != expected)[:10]}"
        )


class TestAdversarialShapes:
    def test_self_loops(self) -> None:
        graph = from_edges(
            6, [(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 4, 9), (4, 3, 1)]
        )
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        assert_batches_match(
            session,
            "sssp",
            "lazy",
            [
                [Mutation("add", 2, 2, 1)],  # self-loop insert
                [Mutation("update", 2, 2, 5)],
                [Mutation("remove", 2, 2)],
                [Mutation("add", 0, 0, 1), Mutation("remove", 0, 1)],
            ],
        )

    def test_parallel_edges(self) -> None:
        # Duplicate copies of 1 -> 2; remove deletes *every* copy at once,
        # update rewrites every copy.
        graph = from_edges(
            5, [(0, 1, 1), (1, 2, 4), (1, 2, 7), (2, 3, 1), (0, 3, 9)]
        )
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        assert_batches_match(
            session,
            "sssp",
            "lazy",
            [
                [Mutation("add", 1, 2, 2)],  # third parallel copy, tighter
                [Mutation("update", 1, 2, 6)],  # all copies move to 6
                [Mutation("remove", 1, 2)],  # every copy disappears
            ],
        )

    def test_zero_weight_edges(self) -> None:
        # A zero-weight cycle keeps both members mutually supported: the
        # invalidation cone must clear the whole cycle, not trust it.
        graph = from_edges(
            6, [(0, 1, 0), (1, 2, 0), (2, 1, 0), (2, 3, 1), (0, 3, 5)]
        )
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        assert_batches_match(
            session,
            "sssp",
            "lazy",
            [
                [Mutation("remove", 0, 1)],  # cycle loses outside support
                [Mutation("add", 0, 1, 0)],
                [Mutation("update", 0, 1, 2)],
            ],
        )

    def test_disconnecting_mutation(self) -> None:
        # Removing the only bridge must drive the far side back to the
        # identity (unreachable), not leave stale finite values.
        graph = from_edges(6, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)])
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        result = session.apply([Mutation("remove", 1, 2)])
        expected = from_scratch("sssp", "lazy", session.graph)
        assert np.array_equal(result.values, expected)
        unreachable = result.values[2]
        assert result.values[3] == unreachable and result.values[4] == unreachable
        # Reconnect through a different bridge.
        result = session.apply([Mutation("add", 0, 2, 7)])
        expected = from_scratch("sssp", "lazy", session.graph)
        assert np.array_equal(result.values, expected)

    def test_mutations_at_the_source(self) -> None:
        graph = from_edges(5, [(0, 1, 3), (1, 2, 3), (0, 2, 9), (3, 0, 2)])
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        assert_batches_match(
            session,
            "sssp",
            "lazy",
            [
                [Mutation("add", 1, 0, 1)],  # edge back into the source
                [Mutation("remove", 0, 1)],  # source loses its tight edge
                [Mutation("add", 0, 1, 2), Mutation("update", 0, 2, 4)],
            ],
        )

    def test_add_then_remove_in_one_batch(self) -> None:
        graph = from_edges(4, [(0, 1, 2), (1, 2, 2)])
        session = IncrementalSession(
            graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
        )
        session.run()
        batch = [
            Mutation("add", 0, 3, 1),
            Mutation("remove", 0, 3),
            Mutation("add", 2, 3, 1),
        ]
        result = session.apply(batch)
        expected = from_scratch("sssp", "lazy", session.graph)
        assert np.array_equal(result.values, expected)


# ---------------------------------------------------------------------------
# 5. Resume profile counters
# ---------------------------------------------------------------------------


def test_stats_counters_accumulate() -> None:
    graph = make_graph("sssp")
    session = make_session("sssp", "lazy", graph)
    session.run()
    batch = random_batch(
        np.random.default_rng(2),
        session.graph,
        8,
        ("add", "remove", "update"),
        unit_weights=False,
        symmetric=False,
    )
    result = session.apply(batch)
    stats = result.stats
    assert stats.incremental_runs == 1
    assert stats.incremental_mutations == len(batch)
    assert stats.incremental_seeds == result.seeds
    assert stats.incremental_invalidated == result.invalidated
    assert stats.incremental_vertices_touched == result.vertices_touched
    assert 0 <= result.vertices_touched <= graph.num_vertices
    assert result.seeds <= graph.num_vertices


def test_empty_cone_is_a_noop_resume() -> None:
    """Worsening a slack (non-supporting) edge must not invalidate anyone."""
    graph = from_edges(4, [(0, 1, 1), (0, 2, 1), (1, 3, 1), (0, 3, 9)])
    session = IncrementalSession(
        graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
    )
    session.run()
    result = session.apply([Mutation("update", 0, 3, 10)])  # still slack
    assert result.invalidated == 0
    assert result.seeds == 0
    expected = from_scratch("sssp", "lazy", session.graph)
    assert np.array_equal(result.values, expected)


# ---------------------------------------------------------------------------
# 6. Mutation scripts drive the same engine (the CLI path)
# ---------------------------------------------------------------------------


def test_mutation_script_batches() -> None:
    script = """
    # grow, then prune
    add 0 2 4
    add 2 3 1
    flush
    update 0 2 2
    flush
    remove 0 2
    """
    batches = parse_mutation_script(script)
    assert [len(b) for b in batches] == [2, 1, 1]
    graph = from_edges(5, [(0, 1, 1), (1, 2, 1), (3, 4, 2)])
    session = IncrementalSession(
        graph, "sssp", source=0, schedule=Schedule(priority_update="lazy")
    )
    session.run()
    for batch in batches:
        result = session.apply(batch)
        expected = from_scratch("sssp", "lazy", session.graph)
        assert np.array_equal(result.values, expected)


# ---------------------------------------------------------------------------
# 7. The I001 eligibility gate
# ---------------------------------------------------------------------------


class TestIncrementalEligibility:
    def test_sum_program_is_ineligible(self) -> None:
        """k-core's updatePrioritySum cannot seed a resume: I001."""
        diags = lint_program(
            ALL_PROGRAMS["kcore"], schedule=Schedule(incremental=True)
        )
        codes = {d.code for d in diags if d.severity is Severity.ERROR}
        assert "I001" in codes

    def test_extremal_program_is_eligible(self) -> None:
        diags = lint_program(
            ALL_PROGRAMS["sssp"],
            schedule=Schedule(priority_update="lazy", incremental=True),
        )
        assert not [d for d in diags if d.code == "I001"]

    def test_plan_rejects_ineligible_schedule(self) -> None:
        from repro.errors import IncrementalityError
        from repro.lang.parser import parse
        from repro.midend.transforms.lowering import plan_program

        with pytest.raises(IncrementalityError, match="not eligible"):
            plan_program(
                parse(ALL_PROGRAMS["kcore"]), Schedule(incremental=True)
            )

    def test_plan_carries_verdict_without_request(self) -> None:
        from repro.lang.parser import parse
        from repro.midend.transforms.lowering import plan_program

        plan = plan_program(
            parse(ALL_PROGRAMS["kcore"]), Schedule(priority_update="lazy")
        )
        verdict = plan.incremental_eligibility
        assert verdict is not None and not verdict.eligible
        assert any("history" in reason for reason in verdict.reasons)

        plan = plan_program(
            parse(ALL_PROGRAMS["sssp"]),
            Schedule(priority_update="lazy", incremental=True),
        )
        verdict = plan.incremental_eligibility
        assert verdict is not None and verdict.eligible
        assert verdict.kind == "min"
        assert verdict.relaxation_shape == "dist_plus_weight"

    def test_native_execution_rejects_incremental(self) -> None:
        with pytest.raises(SchedulingError, match="native"):
            Schedule(execution="native", incremental=True)

    def test_session_rejects_native_schedule(self) -> None:
        graph = from_edges(3, [(0, 1, 1)])
        schedule = Schedule(priority_update="lazy")
        object.__setattr__(schedule, "execution", "native")
        with pytest.raises(SchedulingError, match="native"):
            IncrementalSession(graph, "sssp", source=0, schedule=schedule)
